// End-to-end integration: QASM files from disk -> parser -> engines ->
// distributions, plus robustness fuzzing of the parser and the chunk codec
// (malformed inputs must throw typed errors, never crash or hang).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "circuit/noise.hpp"
#include "circuit/qasm.hpp"
#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "compress/chunk_codec.hpp"
#include "core/engine.hpp"

namespace memq {
namespace {

namespace fs = std::filesystem;

fs::path circuits_dir() {
  // Tests run from build/tests; the .qasm sources live in the repo.
  for (fs::path p : {fs::path{"../../examples/circuits"},
                     fs::path{"../examples/circuits"},
                     fs::path{"examples/circuits"},
                     fs::path{"/root/repo/examples/circuits"}}) {
    if (fs::exists(p / "bell.qasm")) return p;
  }
  return {};
}

TEST(Integration, BellQasmFromDisk) {
  const fs::path dir = circuits_dir();
  ASSERT_FALSE(dir.empty()) << "examples/circuits not found";
  const auto prog = circuit::parse_qasm_file((dir / "bell.qasm").string());
  EXPECT_EQ(prog.circuit.n_qubits(), 2u);
  EXPECT_EQ(prog.measurements.size(), 2u);

  core::EngineConfig cfg;
  cfg.chunk_qubits = 1;
  auto engine = core::make_engine(core::EngineKind::kMemQSim, 2, cfg);
  engine->run(prog.circuit);
  // Post-measurement the state is |00> or |11>.
  const auto dense = engine->to_dense();
  const double p00 = std::norm(dense.amplitude(0));
  const double p11 = std::norm(dense.amplitude(3));
  EXPECT_NEAR(p00 + p11, 1.0, 1e-9);
  EXPECT_TRUE(p00 > 0.99 || p11 > 0.99);
}

TEST(Integration, Ghz8QasmOnAllEngines) {
  const fs::path dir = circuits_dir();
  ASSERT_FALSE(dir.empty());
  const auto prog = circuit::parse_qasm_file((dir / "ghz8.qasm").string());
  for (const auto kind : {core::EngineKind::kDense, core::EngineKind::kWu,
                          core::EngineKind::kMemQSim}) {
    core::EngineConfig cfg;
    cfg.chunk_qubits = 4;
    cfg.seed = 99;  // same measurement outcomes across engines
    auto engine = core::make_engine(kind, prog.circuit.n_qubits(), cfg);
    engine->run(prog.circuit);
    // GHZ then full measurement: all qubits agree.
    const auto counts = engine->sample_counts(100);
    ASSERT_EQ(counts.size(), 1u) << core::engine_kind_name(kind);
    const index_t basis = counts.begin()->first;
    EXPECT_TRUE(basis == 0 || basis == dim_of(8) - 1);
  }
}

TEST(Integration, QpeQasmWithUserGates) {
  const fs::path dir = circuits_dir();
  ASSERT_FALSE(dir.empty());
  const auto prog = circuit::parse_qasm_file((dir / "qpe.qasm").string());
  EXPECT_EQ(prog.circuit.n_qubits(), 5u);

  core::EngineConfig cfg;
  cfg.chunk_qubits = 3;
  auto engine = core::make_engine(core::EngineKind::kMemQSim, 5, cfg);
  // Drop the trailing measurements so we can read the exact distribution.
  circuit::Circuit unitary(5);
  for (const auto& g : prog.circuit.gates())
    if (!g.is_nonunitary()) unitary.append(g);
  engine->run(unitary);
  // Counting register should read 5 (phase = 5/16 with 4 bits).
  const index_t expected = 5 | (index_t{1} << 4);
  EXPECT_GT(std::norm(engine->amplitude(expected)), 0.95);
}

TEST(Integration, TeleportQasm) {
  const fs::path dir = circuits_dir();
  ASSERT_FALSE(dir.empty());
  const auto prog = circuit::parse_qasm_file((dir / "teleport.qasm").string());
  core::EngineConfig cfg;
  cfg.chunk_qubits = 2;
  // P(qubit2 = 1) must equal sin^2(1.1/2) regardless of measurement draws.
  const double expected = std::sin(0.55) * std::sin(0.55);
  int ones = 0;
  constexpr int kTrials = 200;
  for (int t = 0; t < kTrials; ++t) {
    cfg.seed = 7000 + t;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, 3, cfg);
    engine->run(prog.circuit);
    // The trailing measure collapsed qubit 2; read the recorded outcome via
    // the post-measurement probability.
    std::string z2 = "IIZ";
    ones += engine->expectation({z2}) < 0 ? 1 : 0;
  }
  const double phat = static_cast<double>(ones) / kTrials;
  EXPECT_NEAR(phat, expected, 5.0 * std::sqrt(expected * (1 - expected) /
                                              kTrials));
}

TEST(Integration, WorkloadsRoundTripThroughQasm) {
  // Export every exportable workload to QASM text, reparse, and compare
  // states on the dense engine.
  for (const char* name : {"ghz", "qft", "bv", "qaoa", "w", "qpe"}) {
    const circuit::Circuit original = circuit::make_workload(name, 6, 3);
    const std::string text = circuit::to_qasm(original);
    const auto prog = circuit::parse_qasm(text);
    ASSERT_EQ(prog.circuit.n_qubits(), original.n_qubits()) << name;
    sv::Simulator a(original.n_qubits()), b(original.n_qubits());
    a.run(original);
    b.run(prog.circuit);
    EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-9) << name;
  }
}

TEST(Integration, NoisyTrajectoryThroughQasm) {
  // Trajectory sampling composes with QASM round-trips.
  circuit::NoiseModel model;
  model.depolarizing_1q = 0.1;
  const circuit::Circuit noisy = circuit::sample_noisy_trajectory(
      circuit::make_ghz(5), model, 77);
  const auto prog = circuit::parse_qasm(circuit::to_qasm(noisy));
  sv::Simulator a(5), b(5);
  a.run(noisy);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-9);
}

// ---------------------------------------------------------------------------
// Fuzzing
// ---------------------------------------------------------------------------

TEST(Fuzz, MutatedQasmNeverCrashes) {
  const std::string base = circuit::to_qasm(circuit::make_qft(4));
  Prng rng(2024);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 400; ++trial) {
    std::string text = base;
    const int mutations = 1 + static_cast<int>(rng.uniform_index(5));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.uniform_index(text.size());
      switch (rng.uniform_index(3)) {
        case 0:
          text[pos] = static_cast<char>(32 + rng.uniform_index(95));
          break;
        case 1:
          text.erase(pos, 1 + rng.uniform_index(4));
          break;
        default:
          text.insert(pos, 1, static_cast<char>(32 + rng.uniform_index(95)));
          break;
      }
    }
    try {
      (void)circuit::parse_qasm(text);
      ++parsed;
    } catch (const Error&) {
      ++rejected;  // typed rejection is the expected failure mode
    }
  }
  EXPECT_EQ(parsed + rejected, 400);
  EXPECT_GT(rejected, 50);  // mutations do break programs
}

TEST(Fuzz, RandomBytesNeverCrashChunkDecoder) {
  compress::ChunkCodec codec(compress::ChunkCodecConfig{});
  Prng rng(31337);
  std::vector<amp_t> out(256);
  for (int trial = 0; trial < 300; ++trial) {
    compress::ByteBuffer junk(rng.uniform_index(512));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_THROW(codec.decode(junk, out), Error) << "trial " << trial;
  }
}

TEST(Fuzz, TruncatedChunksAlwaysDetected) {
  compress::ChunkCodecConfig cfg;
  compress::ChunkCodec codec(cfg);
  Prng rng(55);
  std::vector<amp_t> amps(512);
  for (auto& a : amps) a = rng.normal_amp() * 0.01;
  compress::ByteBuffer full;
  codec.encode(amps, full);
  std::vector<amp_t> out(512);
  for (std::size_t cut = 0; cut < full.size(); cut += 7) {
    compress::ByteBuffer truncated(full.begin(),
                                   full.begin() + static_cast<long>(cut));
    EXPECT_THROW(codec.decode(truncated, out), Error) << "cut " << cut;
  }
}

}  // namespace
}  // namespace memq
