#include "circuit/transpile.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

using sv::Simulator;

/// Fidelity between the states two circuits produce from |0..0>.
double equivalence_fidelity(const Circuit& a, const Circuit& b) {
  Simulator sa(a.n_qubits()), sb(b.n_qubits());
  sa.run(a);
  sb.run(b);
  return sa.state().fidelity(sb.state());
}

TEST(Zyz, ReconstructsArbitraryUnitaries) {
  Prng rng(17);
  for (int trial = 0; trial < 200; ++trial) {
    const Mat2 m = Gate::u3(0, rng.uniform(0, kPi), rng.uniform(0, 2 * kPi),
                            rng.uniform(0, 2 * kPi))
                       .matrix1q();
    // Attach a random global phase to exercise the alpha extraction.
    const double phase = rng.uniform(0, 2 * kPi);
    Mat2 with_phase;
    const amp_t ph{std::cos(phase), std::sin(phase)};
    for (int i = 0; i < 4; ++i) with_phase[i] = m[i] * ph;

    const auto [theta, phi, lambda, alpha] = zyz_decompose(with_phase);
    const Mat2 rebuilt = Gate::u3(0, theta, phi, lambda).matrix1q();
    const amp_t alpha_ph{std::cos(alpha), std::sin(alpha)};
    Mat2 full;
    for (int i = 0; i < 4; ++i) full[i] = rebuilt[i] * alpha_ph;
    EXPECT_TRUE(mat2_approx_equal(full, with_phase, 1e-9)) << "trial " << trial;
  }
}

TEST(Zyz, HandlesDiagonalAndAntiDiagonal) {
  for (const Gate& g : {Gate::z(0), Gate::s(0), Gate::t(0), Gate::x(0),
                        Gate::y(0), Gate::i(0)}) {
    const Mat2 m = g.matrix1q();
    const auto [theta, phi, lambda, alpha] = zyz_decompose(m);
    const Mat2 rebuilt = Gate::u3(0, theta, phi, lambda).matrix1q();
    const amp_t ph{std::cos(alpha), std::sin(alpha)};
    Mat2 full;
    for (int i = 0; i < 4; ++i) full[i] = rebuilt[i] * ph;
    EXPECT_TRUE(mat2_approx_equal(full, m, 1e-9)) << g.base_name();
  }
}

TEST(Decompose, SwapBecomesThreeCx) {
  Circuit c(2);
  c.swap(0, 1);
  const Circuit low = decompose_to_cx_basis(c);
  EXPECT_EQ(low.size(), 3u);
  for (const Gate& g : low.gates()) {
    EXPECT_EQ(g.kind, GateKind::kX);
    EXPECT_EQ(g.controls.size(), 1u);
  }
  EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-12);
}

TEST(Decompose, ToffoliNetworkIsEquivalent) {
  Circuit c(3);
  c.h(0).h(1).h(2).ccx(0, 1, 2);
  const Circuit low = decompose_to_cx_basis(c);
  for (const Gate& g : low.gates()) {
    EXPECT_LE(g.controls.size(), 1u);
    if (!g.controls.empty()) EXPECT_EQ(g.kind, GateKind::kX);
  }
  EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-12);
}

TEST(Decompose, ControlledU3ViaAbc) {
  Circuit c(2);
  c.h(0).append(Gate::u3(1, 0.8, 1.9, -0.6).with_controls({0}));
  const Circuit low = decompose_to_cx_basis(c);
  for (const Gate& g : low.gates())
    if (!g.controls.empty()) EXPECT_EQ(g.kind, GateKind::kX);
  EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-10);
}

TEST(Decompose, MultiControlledGates) {
  // 3- and 4-controlled phase/X/Z gates through the Barenco recursion.
  for (const Gate& g :
       {Gate::mcx({0, 1, 2}, 3), Gate::mcz({0, 1, 2}, 3),
        Gate::phase(3, 0.9).with_controls({0, 1, 2}),
        Gate::mcx({0, 1, 2, 3}, 4)}) {
    const qubit_t n = g.max_qubit() + 1;
    Circuit c(n);
    for (qubit_t q = 0; q < n; ++q) c.h(q);
    c.append(g);
    const Circuit low = decompose_to_cx_basis(c);
    for (const Gate& lg : low.gates())
      EXPECT_LE(lg.controls.size(), 1u) << lg.to_string();
    EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-9) << g.to_string();
  }
}

TEST(Decompose, CswapIsEquivalent) {
  Circuit c(3);
  c.h(0).h(1).append(Gate::cswap(0, 1, 2));
  const Circuit low = decompose_to_cx_basis(c);
  EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-10);
}

TEST(Decompose, WholeWorkloadsSurvive) {
  for (const char* name : {"ghz", "qft", "grover", "w"}) {
    const Circuit c = make_workload(name, 5, 3);
    const Circuit low = decompose_to_cx_basis(c);
    for (const Gate& g : low.gates())
      EXPECT_LE(g.controls.size(), 1u) << name;
    EXPECT_NEAR(equivalence_fidelity(c, low), 1.0, 1e-8) << name;
  }
}

TEST(Decompose, PreservesBarriersAndMeasure) {
  Circuit c(2);
  c.h(0);
  c.append(Gate::barrier({0, 1}));
  c.measure(0);
  const Circuit low = decompose_to_cx_basis(c);
  EXPECT_EQ(low.size(), 3u);
  EXPECT_EQ(low[1].kind, GateKind::kBarrier);
  EXPECT_EQ(low[2].kind, GateKind::kMeasure);
}

TEST(Fuse, MergesRunsIntoSingleUnitary) {
  Circuit c(1);
  c.h(0).t(0).h(0).s(0).rz(0, 0.3);
  const Circuit fused = fuse_1q_runs(c);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused[0].kind, GateKind::kUnitary1q);
  EXPECT_NEAR(equivalence_fidelity(c, fused), 1.0, 1e-12);
}

TEST(Fuse, DropsIdentityRuns) {
  Circuit c(1);
  c.h(0).h(0);
  EXPECT_EQ(fuse_1q_runs(c).size(), 0u);
  Circuit c2(1);
  c2.t(0).tdg(0).s(0).sdg(0);
  EXPECT_EQ(fuse_1q_runs(c2).size(), 0u);
}

TEST(Fuse, TwoQubitGateBreaksRuns) {
  Circuit c(2);
  c.h(0).h(1).cx(0, 1).h(0);
  const Circuit fused = fuse_1q_runs(c);
  // h0 and h1 fuse to single unitaries, cx stays, trailing h0 separate.
  EXPECT_EQ(fused.size(), 4u);
  EXPECT_NEAR(equivalence_fidelity(c, fused), 1.0, 1e-12);
}

TEST(Fuse, RandomCircuitEquivalence) {
  // Layered random circuits have no adjacent 1q runs, so the pass must be a
  // (correct) no-op size-wise; doubling the 1q layers creates real fusions.
  const Circuit c = make_random_circuit(6, 15, 9);
  const Circuit fused = fuse_1q_runs(c);
  EXPECT_LE(fused.size(), c.size());
  EXPECT_NEAR(equivalence_fidelity(c, fused), 1.0, 1e-9);

  Circuit doubled(6);
  for (const Gate& g : c.gates()) {
    doubled.append(g);
    if (g.controls.empty() && g.targets.size() == 1 && !g.is_barrier())
      doubled.append(Gate::t(g.targets[0]));
  }
  const Circuit fused2 = fuse_1q_runs(doubled);
  EXPECT_LT(fused2.size(), doubled.size());
  EXPECT_NEAR(equivalence_fidelity(doubled, fused2), 1.0, 1e-9);
}

TEST(Fuse, QftEquivalence) {
  const Circuit c = make_qft(6);
  const Circuit fused = fuse_1q_runs(c);
  EXPECT_NEAR(equivalence_fidelity(c, fused), 1.0, 1e-9);
}

TEST(Fuse, ControlledGatesAreNotFused) {
  Circuit c(2);
  c.append(Gate::ry(1, 0.5).with_controls({0}));
  c.append(Gate::ry(1, 0.5).with_controls({0}));
  const Circuit fused = fuse_1q_runs(c);
  EXPECT_EQ(fused.size(), 2u);
}

TEST(ExecutableGateCount, ExcludesBarriers) {
  Circuit c(2);
  c.h(0);
  c.append(Gate::barrier({0, 1}));
  c.cx(0, 1);
  EXPECT_EQ(executable_gate_count(c), 2u);
}

}  // namespace
}  // namespace memq::circuit
