#include "compress/chunk_codec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prng.hpp"

namespace memq::compress {
namespace {

std::vector<amp_t> random_amps(std::size_t n, std::uint64_t seed,
                               double scale = 1e-3) {
  Prng rng(seed);
  std::vector<amp_t> v(n);
  for (auto& a : v) a = rng.normal_amp() * scale;
  return v;
}

double max_error(const std::vector<amp_t>& a, const std::vector<amp_t>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i].real() - b[i].real()));
    m = std::max(m, std::fabs(a[i].imag() - b[i].imag()));
  }
  return m;
}

TEST(ChunkCodec, RoundTripWithinRelativeBound) {
  ChunkCodecConfig cfg;
  cfg.compressor = "szq";
  cfg.mode = ErrorMode::kValueRangeRelative;
  cfg.bound = 1e-4;
  ChunkCodec codec(cfg);

  const auto amps = random_amps(1 << 14, 1);
  double max_abs = 0.0;
  for (const auto& a : amps) {
    max_abs = std::max(max_abs, std::fabs(a.real()));
    max_abs = std::max(max_abs, std::fabs(a.imag()));
  }

  ByteBuffer out;
  codec.encode(amps, out);
  std::vector<amp_t> back(amps.size());
  codec.decode(out, back);
  EXPECT_LE(max_error(amps, back), cfg.bound * max_abs * (1 + 1e-12));
}

TEST(ChunkCodec, RoundTripAbsoluteBound) {
  ChunkCodecConfig cfg;
  cfg.compressor = "bpc";
  cfg.mode = ErrorMode::kAbsolute;
  cfg.bound = 1e-6;
  ChunkCodec codec(cfg);

  const auto amps = random_amps(5000, 2, 0.5);
  ByteBuffer out;
  codec.encode(amps, out);
  std::vector<amp_t> back(amps.size());
  codec.decode(out, back);
  EXPECT_LE(max_error(amps, back), 1e-6 * (1 + 1e-12));
}

TEST(ChunkCodec, LosslessCompressorIsExact) {
  ChunkCodecConfig cfg;
  cfg.compressor = "gorilla";
  ChunkCodec codec(cfg);
  const auto amps = random_amps(4096, 3);
  ByteBuffer out;
  codec.encode(amps, out);
  std::vector<amp_t> back(amps.size());
  codec.decode(out, back);
  EXPECT_EQ(max_error(amps, back), 0.0);
}

TEST(ChunkCodec, AllZeroChunkIsTiny) {
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps(1 << 16, amp_t{0, 0});
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_LT(out.size(), 32u);
  std::vector<amp_t> back(amps.size(), amp_t{1, 1});
  codec.decode(out, back);
  for (const auto& a : back) EXPECT_EQ(a, (amp_t{0, 0}));
}

TEST(ChunkCodec, ConstantChunkIsTinyAndBitExact) {
  // Constant tagging must be bit-exact even under a lossy codec config —
  // that is what lets it stay always-on without breaking the dedup-off
  // bit-identity bar.
  ChunkCodecConfig cfg;
  cfg.compressor = "szq";
  cfg.bound = 1e-4;
  ChunkCodec codec(cfg);
  const amp_t c{0.123456789012345, -0.987654321098765};
  const std::vector<amp_t> amps(1 << 12, c);
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_LT(out.size(), 48u);
  EXPECT_TRUE(ChunkCodec::is_constant_chunk(out));
  EXPECT_FALSE(ChunkCodec::is_zero_chunk(out));
  std::vector<amp_t> back(amps.size(), amp_t{1, 1});
  codec.decode(out, back);
  for (const auto& a : back) EXPECT_EQ(a, c);
}

TEST(ChunkCodec, ZeroChunkReportsConstant) {
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps(256, amp_t{0, 0});
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_TRUE(ChunkCodec::is_zero_chunk(out));
  EXPECT_TRUE(ChunkCodec::is_constant_chunk(out));
}

TEST(ChunkCodec, NonConstantChunkIsNotTagged) {
  ChunkCodec codec(ChunkCodecConfig{});
  auto amps = random_amps(256, 11);
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_FALSE(ChunkCodec::is_constant_chunk(out));
}

TEST(ChunkCodec, ConstantTagPreservesSignedZero) {
  // The constant classifier compares bit patterns, so a -0.0 component
  // round-trips as -0.0 (a value-compare classifier would conflate it with
  // +0.0 and change stored bits).
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps(64, amp_t{1.0, -0.0});
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_FALSE(ChunkCodec::is_zero_chunk(out));
  EXPECT_TRUE(ChunkCodec::is_constant_chunk(out));
  std::vector<amp_t> back(amps.size());
  codec.decode(out, back);
  EXPECT_EQ(back[0].real(), 1.0);
  EXPECT_TRUE(std::signbit(back[0].imag()));
}

TEST(ChunkCodec, ConstantChunkChecksumDetectsBitFlip) {
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps(128, amp_t{0.5, 0.25});
  ByteBuffer out;
  codec.encode(amps, out);
  ASSERT_TRUE(ChunkCodec::is_constant_chunk(out));
  out[out.size() / 2] ^= 0x10;
  std::vector<amp_t> back(amps.size());
  EXPECT_THROW(codec.decode(out, back), CorruptData);
}

TEST(ChunkCodec, SingleAmpChunkIsNeverConstantTagged) {
  // A 1-amp chunk gains nothing from the tag (the tag is the same size);
  // the classifier requires size > 1 so framing stays the historical one.
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps(1, amp_t{2.0, 3.0});
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_FALSE(ChunkCodec::is_constant_chunk(out));
  std::vector<amp_t> back(1);
  codec.decode(out, back);
  EXPECT_EQ(back[0], (amp_t{2.0, 3.0}));
}

TEST(ChunkCodec, EmptyChunk) {
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> amps;
  ByteBuffer out;
  codec.encode(amps, out);
  std::vector<amp_t> back;
  codec.decode(out, back);  // must not throw
}

TEST(ChunkCodec, StoredCountPeek) {
  ChunkCodec codec(ChunkCodecConfig{});
  const auto amps = random_amps(777, 4);
  ByteBuffer out;
  codec.encode(amps, out);
  EXPECT_EQ(ChunkCodec::stored_count(out), 777u);
}

TEST(ChunkCodec, CountMismatchThrows) {
  ChunkCodec codec(ChunkCodecConfig{});
  const auto amps = random_amps(100, 5);
  ByteBuffer out;
  codec.encode(amps, out);
  std::vector<amp_t> back(101);
  EXPECT_THROW(codec.decode(out, back), CorruptData);
}

TEST(ChunkCodec, BitFlipDetectedByChecksum) {
  ChunkCodec codec(ChunkCodecConfig{});
  const auto amps = random_amps(4096, 6);
  ByteBuffer out;
  codec.encode(amps, out);
  Prng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    ByteBuffer corrupted = out;
    const std::size_t byte = rng.uniform_index(corrupted.size());
    corrupted[byte] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    std::vector<amp_t> back(amps.size());
    EXPECT_THROW(codec.decode(corrupted, back), CorruptData)
        << "bit flip at byte " << byte << " went undetected";
  }
}

TEST(ChunkCodec, TruncationDetected) {
  ChunkCodec codec(ChunkCodecConfig{});
  const auto amps = random_amps(4096, 8);
  ByteBuffer out;
  codec.encode(amps, out);
  out.resize(out.size() - 10);
  std::vector<amp_t> back(amps.size());
  EXPECT_THROW(codec.decode(out, back), CorruptData);
}

TEST(ChunkCodec, GarbageRejected) {
  ChunkCodec codec(ChunkCodecConfig{});
  ByteBuffer garbage(100, 0x5A);
  std::vector<amp_t> back(10);
  EXPECT_THROW(codec.decode(garbage, back), CorruptData);
}

TEST(ChunkCodec, ChecksumCanBeDisabled) {
  ChunkCodecConfig cfg;
  cfg.checksum = false;
  ChunkCodec codec(cfg);
  const auto amps = random_amps(1024, 9);
  ByteBuffer with, without;
  codec.encode(amps, without);
  ChunkCodecConfig cfg2;
  cfg2.checksum = true;
  ChunkCodec codec2(cfg2);
  codec2.encode(amps, with);
  EXPECT_EQ(with.size(), without.size() + 8);
}

TEST(ChunkCodec, CompressionRatioOnStateVectorLikeData) {
  // A normalized 2^16-amplitude random state: values ~N(0, 2^-16.5);
  // relative bound 1e-4 should compress well below raw size.
  ChunkCodecConfig cfg;
  cfg.bound = 1e-4;
  ChunkCodec codec(cfg);
  auto amps = random_amps(1 << 16, 10, 1.0);
  double norm = 0.0;
  for (const auto& a : amps) norm += std::norm(a);
  const double inv = 1.0 / std::sqrt(norm);
  for (auto& a : amps) a *= inv;

  ByteBuffer out;
  codec.encode(amps, out);
  const double ratio = static_cast<double>(amps.size() * sizeof(amp_t)) /
                       static_cast<double>(out.size());
  EXPECT_GT(ratio, 3.0);
}

TEST(ChunkCodec, LossyRejectsNonPositiveBound) {
  ChunkCodecConfig cfg;
  cfg.bound = 0.0;
  EXPECT_THROW(ChunkCodec codec(cfg), Error);
}

// ---------------------------------------------------------------------------
// Corruption fuzz: seeded random mutations of valid encodings. The decoder's
// contract is that any corruption surfaces as CorruptData — never undefined
// behavior, a crash, or a silently wrong decode (ASan/TSan CI runs make the
// "never UB" half observable).

TEST(ChunkCodecFuzz, RandomBitFlipsAlwaysSurfaceAsCorruptData) {
  for (const char* compressor : {"szq", "null"}) {
    ChunkCodecConfig cfg;
    cfg.compressor = compressor;
    ChunkCodec codec(cfg);
    const auto amps = random_amps(1 << 10, 11);
    ByteBuffer out;
    codec.encode(amps, out);
    Prng rng(12);
    for (int trial = 0; trial < 200; ++trial) {
      ByteBuffer corrupted = out;
      // 1..4 independent bit flips anywhere in the frame, header included.
      const int flips = 1 + static_cast<int>(rng.uniform_index(4));
      for (int f = 0; f < flips; ++f)
        corrupted[rng.uniform_index(corrupted.size())] ^=
            static_cast<std::uint8_t>(1u << rng.uniform_index(8));
      if (corrupted == out) continue;  // flips canceled out: not a corruption
      std::vector<amp_t> back(amps.size());
      try {
        codec.decode(corrupted, back);
        ADD_FAILURE() << compressor << " trial " << trial
                      << ": corruption went undetected";
      } catch (const CorruptData&) {
        // expected
      }
      try {
        ChunkCodec::verify(corrupted);
        ADD_FAILURE() << compressor << " trial " << trial
                      << ": verify() missed the corruption";
      } catch (const CorruptData&) {
      }
    }
  }
}

TEST(ChunkCodecFuzz, EveryTruncationLengthSurfacesAsCorruptData) {
  ChunkCodec codec(ChunkCodecConfig{});
  const auto amps = random_amps(512, 13);
  ByteBuffer out;
  codec.encode(amps, out);
  Prng rng(14);
  for (int trial = 0; trial < 200; ++trial) {
    ByteBuffer cut = out;
    cut.resize(rng.uniform_index(out.size()));  // 0 .. size-1 bytes kept
    std::vector<amp_t> back(amps.size());
    EXPECT_THROW(codec.decode(cut, back), CorruptData)
        << "truncation to " << cut.size() << " bytes went undetected";
    EXPECT_THROW(ChunkCodec::verify(cut), CorruptData);
  }
}

TEST(ChunkCodecFuzz, RandomGarbageNeverDecodes) {
  ChunkCodec codec(ChunkCodecConfig{});
  Prng rng(15);
  for (int trial = 0; trial < 100; ++trial) {
    ByteBuffer garbage(1 + rng.uniform_index(256), 0);
    for (std::size_t i = 0; i < garbage.size(); ++i)
      garbage[i] = static_cast<std::uint8_t>(rng.uniform_index(256));
    std::vector<amp_t> back(64);
    EXPECT_THROW(codec.decode(garbage, back), CorruptData);
  }
}

TEST(ChunkCodecFuzz, CorruptedZeroChunkHeaderDetected) {
  // The all-zero fast path carries no payload; its frame must still be
  // checksummed so metadata corruption cannot smuggle in a bogus count.
  ChunkCodec codec(ChunkCodecConfig{});
  const std::vector<amp_t> zeros(256);
  ByteBuffer out;
  codec.encode(zeros, out);
  ASSERT_TRUE(ChunkCodec::is_zero_chunk(out));
  Prng rng(16);
  for (int trial = 0; trial < 50; ++trial) {
    ByteBuffer corrupted = out;
    corrupted[rng.uniform_index(corrupted.size())] ^=
        static_cast<std::uint8_t>(1u << rng.uniform_index(8));
    std::vector<amp_t> back(zeros.size());
    EXPECT_THROW(codec.decode(corrupted, back), CorruptData);
  }
}

}  // namespace
}  // namespace memq::compress
