#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"

namespace memq {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("12345"), std::string::npos);
  // Header rule present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(TextTable, RowCount) {
  TextTable t({"a"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"x"});
  EXPECT_EQ(t.rows(), 1u);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(1024), "1.00 KiB");
  EXPECT_EQ(human_bytes(1536), "1.50 KiB");
  EXPECT_EQ(human_bytes(1ull << 30), "1.00 GiB");
}

TEST(Format, HumanSeconds) {
  EXPECT_EQ(human_seconds(2.5), "2.500 s");
  EXPECT_EQ(human_seconds(0.0025), "2.500 ms");
  EXPECT_EQ(human_seconds(2.5e-6), "2.500 us");
  EXPECT_EQ(human_seconds(5e-9), "5.0 ns");
}

TEST(Format, FixedAndSci) {
  EXPECT_EQ(format_fixed(1.0345, 2), "1.03");
  EXPECT_EQ(format_sci(0.0001, 1), "1.0e-04");
}

TEST(PhaseTimers, AccumulatesAndMerges) {
  PhaseTimers a;
  a.add("h2d", 1.0);
  a.add("h2d", 0.5);
  a.add("kernel", 2.0);
  EXPECT_DOUBLE_EQ(a.get("h2d"), 1.5);
  EXPECT_DOUBLE_EQ(a.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(a.total(), 3.5);

  PhaseTimers b;
  b.add("kernel", 1.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get("kernel"), 3.0);
}

TEST(PhaseTimers, ScopedPhaseAddsTime) {
  PhaseTimers t;
  {
    ScopedPhase p(t, "work");
    WallTimer w;
    while (w.seconds() < 0.01) {
    }
  }
  EXPECT_GE(t.get("work"), 0.009);
}

TEST(WallTimer, Monotonic) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
  t.restart();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace memq
