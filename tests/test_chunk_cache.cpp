// Budgeted write-back chunk cache: budget enforcement, Belady vs. LRU
// eviction on a scripted stage plan, dirty write-back on eviction/flush,
// zero-chunk coherence, Null-codec bit-identity cache-on vs. cache-off, and
// dense-oracle equivalence across budgets x codec_threads (the semantics
// contract of DESIGN.md §5c).
#include "core/chunk_cache.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdio>
#include <cstring>

#include "circuit/workloads.hpp"
#include "core/chunk_store.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;

bool bit_identical(const sv::StateVector& a, const sv::StateVector& b) {
  if (a.amplitudes().size() != b.amplitudes().size()) return false;
  return std::memcmp(a.amplitudes().data(), b.amplitudes().data(),
                     a.amplitudes().size() * sizeof(amp_t)) == 0;
}

EngineConfig cache_config(std::uint64_t budget, std::uint32_t threads = 1,
                          qubit_t chunk_qubits = 4,
                          const char* codec = "szq") {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.compressor = codec;
  cfg.codec.bound = 1e-6;
  cfg.codec_threads = threads;
  cfg.cache_budget_bytes = budget;
  return cfg;
}

/// A 4-chunk store (6 qubits, chunk 2^4) with the Null codec so blob
/// contents can be compared bit for bit, preloaded with distinct data.
struct CacheFixture {
  compress::ChunkCodecConfig codec;
  ChunkStore store;
  BufferPool buffers;
  InFlightLedger ledger;
  std::vector<amp_t> scratch;

  CacheFixture()
      : codec{make_codec()}, store(6, 4, codec), scratch(store.chunk_amps()) {
    store.init_basis(0);
    for (index_t ci = 0; ci < store.n_chunks(); ++ci) {
      fill_pattern(ci, scratch);
      store.store(ci, scratch);
    }
  }
  static compress::ChunkCodecConfig make_codec() {
    compress::ChunkCodecConfig c;
    c.compressor = "null";
    return c;
  }
  void fill_pattern(index_t ci, std::span<amp_t> out) const {
    for (index_t j = 0; j < out.size(); ++j)
      out[j] = amp_t{static_cast<double>(ci + 1),
                     static_cast<double>(j)};
  }
  std::uint64_t chunk_raw() const { return store.chunk_raw_bytes(); }
};

// ---------------------------------------------------------------------------
// Budget enforcement
// ---------------------------------------------------------------------------

TEST(ChunkCacheUnit, BudgetNeverExceeded) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   2 * fx.chunk_raw());
  for (int round = 0; round < 3; ++round) {
    for (index_t ci = 0; ci < fx.store.n_chunks(); ++ci) {
      cache.load(ci, fx.scratch);
      EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
      cache.store(ci, fx.scratch);
      EXPECT_LE(cache.resident_bytes(), cache.budget_bytes());
    }
  }
  EXPECT_LE(cache.stats().peak_resident_bytes, cache.budget_bytes());
  cache.flush();
}

TEST(ChunkCacheUnit, SubChunkBudgetDegeneratesToPassThrough) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   fx.chunk_raw() - 1);
  cache.load(0, fx.scratch);
  cache.store(0, fx.scratch);
  cache.load(0, fx.scratch);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 2u);
  cache.flush();
}

// ---------------------------------------------------------------------------
// Eviction policy: Belady (scripted plan) vs. LRU (no plan)
// ---------------------------------------------------------------------------

TEST(ChunkCacheUnit, BeladyBeatsLruOnScriptedPlan) {
  // Two kEvery stages over 4 chunks with a 2-chunk budget. LRU thrashes (it
  // always evicts the entry the next stage needs first); Belady keeps slot
  // 0 across the stage boundary and re-caches slot 3 late, scoring 2 hits.
  CacheFixture fx;
  {
    ChunkCache lru(fx.store, nullptr, fx.buffers, fx.ledger,
                   2 * fx.chunk_raw());
    for (int stage = 0; stage < 2; ++stage)
      for (index_t ci = 0; ci < 4; ++ci) lru.load(ci, fx.scratch);
    EXPECT_EQ(lru.stats().hits, 0u);
    EXPECT_EQ(lru.stats().misses, 8u);
  }
  {
    ChunkCache belady(fx.store, nullptr, fx.buffers, fx.ledger,
                      2 * fx.chunk_raw());
    belady.set_plan({{StageAccess::Kind::kEvery, 0},
                     {StageAccess::Kind::kEvery, 0}});
    for (std::size_t stage = 0; stage < 2; ++stage) {
      belady.begin_stage(stage);
      for (index_t ci = 0; ci < 4; ++ci) belady.load(ci, fx.scratch);
    }
    EXPECT_EQ(belady.stats().hits, 2u);
    EXPECT_EQ(belady.stats().misses, 6u);
  }
}

TEST(ChunkCacheUnit, PairStagePositionsShareTheSlot) {
  // kPair with mask 2: slots {0,2} are touched at position 0, {1,3} at
  // position 1. With budget 2 and a following kEvery stage, Belady keeps
  // the pair whose next use is sooner.
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   2 * fx.chunk_raw());
  cache.set_plan({{StageAccess::Kind::kPair, 2},
                  {StageAccess::Kind::kEvery, 0}});
  cache.begin_stage(0);
  cache.load(0, fx.scratch);
  cache.load(2, fx.scratch);
  cache.load(1, fx.scratch);  // evicts 2 (next use 6) over 0 (next use 4)
  cache.load(3, fx.scratch);  // evicts 3's worst leftover
  cache.begin_stage(1);
  cache.load(0, fx.scratch);
  EXPECT_GE(cache.stats().hits, 1u);  // slot 0 survived the boundary
}

// ---------------------------------------------------------------------------
// Write-back semantics
// ---------------------------------------------------------------------------

TEST(ChunkCacheUnit, DirtyEntryWritesBackOnFlushNotBefore) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   4 * fx.chunk_raw());
  std::vector<amp_t> data(fx.store.chunk_amps(), amp_t{7.5, -2.5});
  cache.store(2, data);
  EXPECT_TRUE(cache.dirty(2));

  // The blob still holds the old pattern (Null codec = exact bytes).
  fx.store.load(2, fx.scratch);
  EXPECT_EQ(fx.scratch[0], (amp_t{3.0, 0.0}));

  cache.flush();
  EXPECT_FALSE(cache.dirty(2));
  EXPECT_EQ(cache.stats().writebacks, 1u);
  fx.store.load(2, fx.scratch);
  EXPECT_EQ(fx.scratch[0], (amp_t{7.5, -2.5}));

  // Flushed entries stay resident and serve hits.
  cache.load(2, fx.scratch);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ChunkCacheUnit, DirtyEvictionWritesBackCleanEvictionSkipsEncode) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   1 * fx.chunk_raw());
  std::vector<amp_t> data(fx.store.chunk_amps(), amp_t{9.0, 9.0});
  const std::uint64_t stores_before = fx.store.stores();
  cache.store(0, data);            // dirty resident
  cache.load(1, fx.scratch);       // evicts 0 -> write-back
  EXPECT_EQ(cache.stats().writebacks, 1u);
  EXPECT_EQ(fx.store.stores(), stores_before + 1);
  fx.store.load(0, fx.scratch);
  EXPECT_EQ(fx.scratch[0], (amp_t{9.0, 9.0}));

  cache.load(2, fx.scratch);       // evicts clean 1 -> no encode
  EXPECT_EQ(cache.stats().clean_evictions, 1u);
  EXPECT_EQ(fx.store.stores(), stores_before + 1);
  cache.flush();
}

TEST(ChunkCacheUnit, DropDiscardsWithoutWriteBack) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   4 * fx.chunk_raw());
  std::vector<amp_t> data(fx.store.chunk_amps(), amp_t{1.0, 1.0});
  cache.store(3, data);
  cache.drop(3);
  cache.flush();
  fx.store.load(3, fx.scratch);
  EXPECT_EQ(fx.scratch[0], (amp_t{4.0, 0.0}));  // original pattern intact
}

TEST(ChunkCacheUnit, OnSwapFollowsTheBlobs) {
  CacheFixture fx;
  ChunkCache cache(fx.store, nullptr, fx.buffers, fx.ledger,
                   4 * fx.chunk_raw());
  std::vector<amp_t> data(fx.store.chunk_amps(), amp_t{5.0, 5.0});
  cache.store(0, data);
  cache.on_swap(0, 1);
  fx.store.swap_chunks(0, 1);
  EXPECT_TRUE(cache.dirty(1));
  EXPECT_FALSE(cache.dirty(0));
  cache.load(1, fx.scratch);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(fx.scratch[0], (amp_t{5.0, 5.0}));
  cache.flush();
  fx.store.load(1, fx.scratch);
  EXPECT_EQ(fx.scratch[0], (amp_t{5.0, 5.0}));
}

// ---------------------------------------------------------------------------
// Zero-chunk coherence
// ---------------------------------------------------------------------------

TEST(ChunkCacheUnit, DirtyChunkNeverReportsZeroFromStaleBlob) {
  compress::ChunkCodecConfig codec = CacheFixture::make_codec();
  ChunkStore store(6, 4, codec);
  store.init_basis(0);  // chunks 1..3 are zero blobs
  BufferPool buffers;
  InFlightLedger ledger;
  ChunkCache cache(store, nullptr, buffers, ledger,
                   4 * store.chunk_raw_bytes());
  ASSERT_TRUE(store.is_zero_chunk(2));
  std::vector<amp_t> data(store.chunk_amps(), amp_t{0.5, 0.0});
  cache.store(2, data);
  EXPECT_TRUE(store.is_zero_chunk(2));  // blob is stale...
  EXPECT_FALSE(cache.is_zero(2));       // ...but the cache knows better
  cache.flush();
  EXPECT_FALSE(store.is_zero_chunk(2));
  EXPECT_FALSE(cache.is_zero(2));
}

// ---------------------------------------------------------------------------
// Engine-level: Null-codec bit-identity, dense-oracle tolerance, telemetry
// ---------------------------------------------------------------------------

class CacheBitIdentity : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CacheBitIdentity, NullCodecCacheOnEqualsCacheOff) {
  // qft exercises permute stages (cache entries must follow blob swaps);
  // random mixes local/pair stages and measurements stay out of the way.
  for (const char* workload : {"qft", "random"}) {
    const Circuit c = circuit::make_workload(workload, 8, 23);
    const std::uint64_t raw = dim_of(8) * kAmpBytes;
    for (const std::uint64_t budget : {raw / 4, raw}) {
      // Fresh baseline per budget: sample_counts consumes engine RNG, so
      // the two engines must be at the same draw.
      auto off = make_engine(GetParam(), 8, cache_config(0, 1, 4, "null"));
      auto on =
          make_engine(GetParam(), 8, cache_config(budget, 1, 4, "null"));
      off->run(c);
      on->run(c);
      EXPECT_TRUE(bit_identical(off->to_dense(), on->to_dense()))
          << workload << " budget " << budget;
      EXPECT_EQ(off->sample_counts(100), on->sample_counts(100))
          << workload << " budget " << budget;
    }
  }
}

TEST_P(CacheBitIdentity, MeasurementsMatchWithNullCodec) {
  Circuit c(8);
  for (qubit_t q = 0; q < 8; ++q) c.append(Gate::h(q));
  c.append(Gate::cx(0, 7));
  c.measure(0);
  c.measure(6);
  auto off = make_engine(GetParam(), 8, cache_config(0, 1, 4, "null"));
  auto on = make_engine(GetParam(), 8,
                        cache_config(dim_of(8) * kAmpBytes / 2, 1, 4,
                                     "null"));
  off->run(c);
  on->run(c);
  EXPECT_TRUE(bit_identical(off->to_dense(), on->to_dense()));
}

INSTANTIATE_TEST_SUITE_P(Engines, CacheBitIdentity,
                         ::testing::Values(EngineKind::kMemQSim,
                                           EngineKind::kWu));

TEST(ChunkCacheEngine, DenseOracleHoldsAcrossBudgetsAndThreads) {
  const Circuit c = circuit::make_workload("random", 10, 5);
  auto oracle = make_engine(EngineKind::kDense, 10);
  oracle->run(c);
  const sv::StateVector want = oracle->to_dense();
  const std::uint64_t raw = dim_of(10) * kAmpBytes;

  for (const std::uint64_t budget : {raw / 8, raw / 4, raw / 2, raw}) {
    std::vector<amp_t> first;
    for (const std::uint32_t threads : {1u, 4u}) {
      auto engine = make_engine(EngineKind::kMemQSim, 10,
                                cache_config(budget, threads));
      engine->run(c);
      const sv::StateVector got = engine->to_dense();
      for (index_t i = 0; i < want.amplitudes().size(); ++i) {
        EXPECT_NEAR(want.amplitudes()[i].real(), got.amplitudes()[i].real(),
                    1e-4)
            << "budget " << budget << " threads " << threads << " amp " << i;
        EXPECT_NEAR(want.amplitudes()[i].imag(), got.amplitudes()[i].imag(),
                    1e-4)
            << "budget " << budget << " threads " << threads << " amp " << i;
      }
      // At a fixed budget the result must not depend on codec_threads: all
      // cache decisions happen on the coordinator in access order.
      if (first.empty()) {
        first.assign(got.amplitudes().begin(), got.amplitudes().end());
      } else {
        EXPECT_EQ(0, std::memcmp(first.data(), got.amplitudes().data(),
                                 first.size() * sizeof(amp_t)))
            << "budget " << budget;
      }
    }
  }
}

TEST(ChunkCacheEngine, BudgetZeroKeepsHistoricalPathAndCountsCodecWork) {
  const Circuit c = circuit::make_workload("qft", 10, 3);
  auto off = make_engine(EngineKind::kMemQSim, 10, cache_config(0));
  off->run(c);
  const auto& t_off = off->telemetry();
  EXPECT_EQ(t_off.cache_hits, 0u);
  EXPECT_EQ(t_off.cache_misses, 0u);
  EXPECT_EQ(t_off.cache_writebacks, 0u);
  EXPECT_EQ(t_off.peak_cache_resident_bytes, 0u);

  auto on = make_engine(EngineKind::kMemQSim, 10,
                        cache_config(dim_of(10) * kAmpBytes / 4));
  on->run(c);
  const auto& t_on = on->telemetry();
  EXPECT_GT(t_on.cache_hits, 0u);
  EXPECT_GT(t_on.cache_codec_bytes_avoided, 0u);
  // The cache's whole point: strictly less codec traffic than the
  // historical path on a stage-heavy circuit.
  EXPECT_LT(t_on.chunk_loads + t_on.chunk_stores,
            t_off.chunk_loads + t_off.chunk_stores);
}

TEST(ChunkCacheEngine, ResidentBytesChargedToInFlightLedger) {
  EngineConfig cfg = cache_config(dim_of(10) * kAmpBytes / 4, 4);
  auto engine = make_engine(EngineKind::kMemQSim, 10, cfg);
  engine->run(circuit::make_workload("random", 10, 11));
  (void)engine->norm();
  const auto& t = engine->telemetry();
  EXPECT_LE(t.peak_cache_resident_bytes, cfg.cache_budget_bytes);
  // Ledger peak covers cache residency + the bounded pipeline window.
  const std::uint64_t chunk_raw = (index_t{1} << cfg.chunk_qubits) * kAmpBytes;
  const std::uint64_t depth = cfg.device_count * cfg.device_slots + 1;
  const std::uint64_t window = (depth + cfg.codec_threads) * 2 * chunk_raw;
  EXPECT_GE(t.peak_inflight_bytes, t.peak_cache_resident_bytes);
  EXPECT_LE(t.peak_inflight_bytes, cfg.cache_budget_bytes + window);
}

TEST(ChunkCacheEngine, CheckpointFlushesDirtyEntries) {
  const std::string path = "test_chunk_cache.ckpt";
  const Circuit c = circuit::make_workload("qft", 8, 17);
  auto engine = make_engine(EngineKind::kMemQSim, 8,
                            cache_config(dim_of(8) * kAmpBytes, 1, 4,
                                         "null"));
  engine->run(c);  // with a full-state budget, every chunk ends dirty
  const sv::StateVector want = engine->to_dense();
  engine->save_state(path);

  auto restored = make_engine(EngineKind::kMemQSim, 8,
                              cache_config(0, 1, 4, "null"));
  restored->load_state(path);
  EXPECT_TRUE(bit_identical(want, restored->to_dense()));
  std::remove(path.c_str());
}

TEST(ChunkCacheEngine, ResetAndLoadDenseInvalidate) {
  auto engine = make_engine(EngineKind::kMemQSim, 8,
                            cache_config(dim_of(8) * kAmpBytes, 1, 4,
                                         "null"));
  engine->run(circuit::make_workload("qft", 8, 9));
  engine->reset();
  // After reset the state must be |0..0> with no cache leftovers.
  EXPECT_EQ(engine->amplitude(0), (amp_t{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(engine->norm(), 1.0);
  EXPECT_EQ(engine->telemetry().cache_writebacks, 0u);

  engine->run(circuit::make_workload("random", 8, 9));
  std::vector<amp_t> basis(dim_of(8), amp_t{0, 0});
  basis[5] = amp_t{1.0, 0.0};
  engine->load_dense(basis);
  EXPECT_EQ(engine->amplitude(5), (amp_t{1.0, 0.0}));
  EXPECT_DOUBLE_EQ(engine->norm(), 1.0);
}

}  // namespace
}  // namespace memq::core
