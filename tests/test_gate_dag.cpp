// Commutation-rule and DAG-soundness tests for circuit/gate_dag.hpp.
//
// The property tests are the load-bearing part: for random circuits, ANY
// linearization the DAG admits must produce the same state as the written
// order on the dense simulator. A missing edge shows up as an amplitude
// mismatch; a spurious edge only costs scheduling freedom, so the unit
// tests below pin the freedom we rely on (diagonal hoisting, disjoint
// supports) explicitly.
#include "circuit/gate_dag.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

TEST(WireRoleClass, ClassifiesTargetsByMatrixShape) {
  EXPECT_EQ(wire_role(Gate::i(0), 0), WireRole::kScalar);
  EXPECT_EQ(wire_role(Gate::z(0), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::s(0), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::t(0), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::rz(0, 0.3), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::phase(0, 0.7), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::x(0), 0), WireRole::kX);
  EXPECT_EQ(wire_role(Gate::y(0), 0), WireRole::kY);
  EXPECT_EQ(wire_role(Gate::h(0), 0), WireRole::kOther);
  // sqrt(X) is a function of X: same axis class, commutes with X.
  EXPECT_EQ(wire_role(Gate::sx(0), 0), WireRole::kX);
  EXPECT_EQ(wire_role(Gate::rx(0, 0.4), 0), WireRole::kX);
  // rx(2*pi) = -I: a global phase, so the wire constraint is trivial.
  EXPECT_EQ(wire_role(Gate::rx(0, 2 * 3.14159265358979323846), 0),
            WireRole::kScalar);
}

TEST(WireRoleClass, ControlWiresAreDiagonal) {
  // C_S(U) = P0 (x) I + P1 (x) U: diagonal on the control wire whatever U.
  EXPECT_EQ(wire_role(Gate::cx(3, 1), 3), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::cx(3, 1), 1), WireRole::kX);
  EXPECT_EQ(wire_role(Gate::ccx(2, 3, 1), 2), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::cp(0, 1, 0.5), 0), WireRole::kZ);
  EXPECT_EQ(wire_role(Gate::cp(0, 1, 0.5), 1), WireRole::kZ);
}

TEST(WireRoleClass, NonUnitaryAndSwapAreOpaque) {
  EXPECT_EQ(wire_role(Gate::measure(0), 0), WireRole::kOther);
  EXPECT_EQ(wire_role(Gate::reset(0), 0), WireRole::kOther);
  EXPECT_EQ(wire_role(Gate::swap(0, 1), 0), WireRole::kOther);
}

TEST(RolesCommute, PairTable) {
  using R = WireRole;
  // Scalar commutes with everything, Other with nothing (not even itself).
  for (const R r : {R::kScalar, R::kZ, R::kX, R::kY, R::kOther}) {
    EXPECT_TRUE(roles_commute(R::kScalar, r));
    EXPECT_TRUE(roles_commute(r, R::kScalar));
    EXPECT_EQ(roles_commute(R::kOther, r), r == R::kScalar);
  }
  EXPECT_TRUE(roles_commute(R::kZ, R::kZ));
  EXPECT_TRUE(roles_commute(R::kX, R::kX));
  EXPECT_TRUE(roles_commute(R::kY, R::kY));
  EXPECT_FALSE(roles_commute(R::kZ, R::kX));
  EXPECT_FALSE(roles_commute(R::kX, R::kY));
  EXPECT_FALSE(roles_commute(R::kY, R::kZ));
}

TEST(GatesCommute, DisjointSupportsAlwaysCommute) {
  EXPECT_TRUE(gates_commute(Gate::h(0), Gate::h(1)));
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(2, 3)));
  EXPECT_TRUE(gates_commute(Gate::measure(0), Gate::h(1)) == false)
      << "non-unitary gates are fences even off-wire";
}

TEST(GatesCommute, SharedWireCases) {
  // Shared control wire: both diagonal there.
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cz(0, 2)));
  EXPECT_TRUE(gates_commute(Gate::cx(0, 1), Gate::cx(0, 2)));
  // Control of one meets target of the other.
  EXPECT_FALSE(gates_commute(Gate::cx(0, 1), Gate::cx(1, 2)));
  EXPECT_FALSE(gates_commute(Gate::x(0), Gate::cx(0, 1)));
  // Control-only overlap with a diagonal target commutes.
  EXPECT_TRUE(gates_commute(Gate::cp(0, 1, 0.3), Gate::cp(1, 2, 0.9)));
  EXPECT_TRUE(gates_commute(Gate::rz(1, 0.2), Gate::cp(0, 1, 0.4)));
  // Same-axis targets commute, cross-axis don't.
  EXPECT_TRUE(gates_commute(Gate::x(0), Gate::rx(0, 0.7)));
  EXPECT_TRUE(gates_commute(Gate::t(0), Gate::rz(0, 0.7)));
  EXPECT_FALSE(gates_commute(Gate::h(0), Gate::t(0)));
  EXPECT_FALSE(gates_commute(Gate::x(0), Gate::z(0)));
}

TEST(GateDagBuild, ChainOnOneWire) {
  Circuit c(2);
  c.h(0).t(0).h(0);
  const GateDag dag = build_gate_dag(c);
  ASSERT_EQ(dag.size(), 3u);
  EXPECT_TRUE(dag.is_legal_order({0, 1, 2}));
  EXPECT_FALSE(dag.is_legal_order({1, 0, 2}));
  EXPECT_FALSE(dag.is_legal_order({0, 2, 1}));
}

TEST(GateDagBuild, DiagonalRunReorders) {
  Circuit c(2);
  c.t(0).rz(0, 0.5).s(0);
  const GateDag dag = build_gate_dag(c);
  // All three are Z-role on wire 0: any permutation is legal.
  EXPECT_TRUE(dag.is_legal_order({2, 0, 1}));
  EXPECT_TRUE(dag.is_legal_order({1, 2, 0}));
}

// Regression for the classic unsound construction ("edge only to the LAST
// non-commuting gate per wire"): A0 = CX(q->a), A1 = CX(q->b) commute with
// each other (shared control), H(q) commutes with neither. Transitivity
// must still order H after BOTH — an order placing H between or before the
// CXs is wrong.
TEST(GateDagBuild, TransitiveOrderingThroughCommutingGroup) {
  Circuit c(3);
  c.cx(0, 1).cx(0, 2).h(0);
  const GateDag dag = build_gate_dag(c);
  EXPECT_TRUE(dag.is_legal_order({0, 1, 2}));
  EXPECT_TRUE(dag.is_legal_order({1, 0, 2}));  // CXs swap freely
  EXPECT_FALSE(dag.is_legal_order({0, 2, 1}));
  EXPECT_FALSE(dag.is_legal_order({2, 0, 1}));
  EXPECT_FALSE(dag.is_legal_order({2, 1, 0}));
}

TEST(GateDagBuild, MeasureIsAFullFence) {
  Circuit c(2);
  c.h(0).h(1).measure(0).t(1);
  const GateDag dag = build_gate_dag(c);
  // t(1) has disjoint support from measure(0), but measurement fences.
  EXPECT_FALSE(dag.is_legal_order({0, 1, 3, 2}));
  EXPECT_TRUE(dag.is_legal_order({1, 0, 2, 3}));
}

TEST(GateDagBuild, BarriersAreDropped) {
  Circuit c(2);
  c.h(0).append(Gate::barrier({0, 1})).h(1);
  const GateDag dag = build_gate_dag(c);
  EXPECT_EQ(dag.size(), 2u);
}

// --- property tests -------------------------------------------------------

/// A uniformly random DAG-legal linearization: repeatedly pick a random
/// ready node.
std::vector<std::size_t> random_linearization(const GateDag& dag, Prng& rng) {
  std::vector<std::size_t> indeg(dag.size(), 0);
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < dag.size(); ++i) {
    indeg[i] = dag.nodes[i].preds.size();
    if (indeg[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(dag.size());
  while (!ready.empty()) {
    const std::size_t pick = rng.uniform_index(ready.size());
    const std::size_t i = ready[pick];
    ready[pick] = ready.back();
    ready.pop_back();
    order.push_back(i);
    for (const std::size_t s : dag.nodes[i].succs)
      if (--indeg[s] == 0) ready.push_back(s);
  }
  return order;
}

TEST(GateDagProperty, EveryLegalLinearizationMatchesDenseOracle) {
  constexpr int kCircuits = 12;
  constexpr int kOrdersPerCircuit = 4;
  constexpr double kTol = 1e-10;  // dense doubles: only fp reassociation
  for (int ci = 0; ci < kCircuits; ++ci) {
    const std::uint64_t seed = 4200 + static_cast<std::uint64_t>(ci);
    Prng rng(seed);
    const qubit_t n = static_cast<qubit_t>(4 + rng.uniform_index(9));
    const std::size_t depth =
        3 + static_cast<std::size_t>(rng.uniform_index(4));
    const Circuit circ = make_random_circuit(n, depth, seed, /*haar_1q=*/true);
    const GateDag dag = build_gate_dag(circ);

    sv::Simulator reference(n);
    reference.run(circ);

    for (int oi = 0; oi < kOrdersPerCircuit; ++oi) {
      const std::vector<std::size_t> order = random_linearization(dag, rng);
      ASSERT_EQ(order.size(), dag.size()) << "linearization dropped nodes";
      ASSERT_TRUE(dag.is_legal_order(order));
      Circuit reordered(n);
      for (const std::size_t i : order) reordered.append(dag.nodes[i].gate);

      sv::Simulator got(n);
      got.run(reordered);
      double max_err = 0.0;
      for (index_t k = 0; k < (index_t{1} << n); ++k)
        max_err = std::max(max_err,
                           std::abs(got.state().amplitude(k) -
                                    reference.state().amplitude(k)));
      EXPECT_LT(max_err, kTol)
          << "seed=" << seed << " order=" << oi
          << ": DAG admitted an order that changes the state";
    }
  }
}

TEST(GateDagProperty, WrittenOrderIsAlwaysLegal) {
  for (std::uint64_t seed = 77; seed < 87; ++seed) {
    Prng rng(seed);
    const qubit_t n = static_cast<qubit_t>(4 + rng.uniform_index(9));
    const Circuit circ = make_random_circuit(n, 4, seed, true);
    const GateDag dag = build_gate_dag(circ);
    std::vector<std::size_t> identity(dag.size());
    for (std::size_t i = 0; i < identity.size(); ++i) identity[i] = i;
    EXPECT_TRUE(dag.is_legal_order(identity)) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace memq::circuit
