#include "circuit/qasm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

TEST(Qasm, MinimalProgram) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0], q[1];
)");
  EXPECT_EQ(prog.circuit.n_qubits(), 2u);
  ASSERT_EQ(prog.circuit.size(), 2u);
  EXPECT_EQ(prog.circuit[0].kind, GateKind::kH);
  EXPECT_EQ(prog.circuit[1].kind, GateKind::kX);
  EXPECT_EQ(prog.circuit[1].controls[0], 0u);
}

TEST(Qasm, NativeGateZoo) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
x q[0]; y q[0]; z q[0]; s q[1]; sdg q[1]; t q[2]; tdg q[2];
rx(0.5) q[0]; ry(pi/2) q[1]; rz(-pi/4) q[2];
u1(0.1) q[0]; u2(0.1,0.2) q[1]; u3(0.1,0.2,0.3) q[2];
cz q[0], q[1]; cy q[1], q[2]; ch q[0], q[2];
swap q[0], q[1]; ccx q[0], q[1], q[2]; cswap q[0], q[1], q[2];
crz(0.3) q[0], q[1]; cu1(0.4) q[1], q[2];
)");
  EXPECT_EQ(prog.circuit.size(), 21u);
  // Spot check a few kinds.
  EXPECT_EQ(prog.circuit[9].kind, GateKind::kRZ);
  EXPECT_NEAR(prog.circuit[9].params[0], -kPi / 4, 1e-15);
  EXPECT_EQ(prog.circuit[20].kind, GateKind::kPhase);  // cu1 -> controlled p
  EXPECT_EQ(prog.circuit[20].controls.size(), 1u);
}

TEST(Qasm, ExpressionGrammar) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
qreg q[1];
U(2*pi/4, -pi^2/pi, sin(pi/2)+cos(0)) q[0];
)");
  ASSERT_EQ(prog.circuit.size(), 1u);
  const auto& p = prog.circuit[0].params;
  EXPECT_NEAR(p[0], kPi / 2, 1e-12);
  EXPECT_NEAR(p[1], -kPi, 1e-12);
  EXPECT_NEAR(p[2], 2.0, 1e-12);
}

TEST(Qasm, WholeRegisterBroadcast) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
h q;
)");
  EXPECT_EQ(prog.circuit.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(prog.circuit[i].kind, GateKind::kH);
}

TEST(Qasm, TwoRegisterBroadcastCx) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg a[3];
qreg b[3];
cx a, b;
)");
  EXPECT_EQ(prog.circuit.n_qubits(), 6u);
  EXPECT_EQ(prog.circuit.size(), 3u);
  EXPECT_EQ(prog.circuit[2].controls[0], 2u);
  EXPECT_EQ(prog.circuit[2].targets[0], 5u);
}

TEST(Qasm, BroadcastSizeMismatchFails) {
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg a[2];
qreg b[3];
cx a, b;
)"),
               ParseError);
}

TEST(Qasm, UserGateDefinition) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate bell a, b { h a; cx a, b; }
gate rot(ang) a { rz(ang/2) a; rz(ang/2) a; }
qreg q[2];
bell q[0], q[1];
rot(1.0) q[1];
)");
  ASSERT_EQ(prog.circuit.size(), 4u);
  EXPECT_EQ(prog.circuit[0].kind, GateKind::kH);
  EXPECT_EQ(prog.circuit[3].kind, GateKind::kRZ);
  EXPECT_DOUBLE_EQ(prog.circuit[3].params[0], 0.5);
}

TEST(Qasm, NestedGateDefinitions) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate inner a { x a; }
gate outer a, b { inner a; cx a, b; inner b; }
qreg q[2];
outer q[0], q[1];
)");
  ASSERT_EQ(prog.circuit.size(), 3u);
  EXPECT_EQ(prog.circuit[0].kind, GateKind::kX);
  EXPECT_TRUE(prog.circuit[0].controls.empty());
}

TEST(Qasm, Qelib1ExpansionMatchesNative) {
  // cu3 has no native kind: it must expand to u1/cx/u3 and produce the same
  // state as the textbook decomposition.
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cu3(0.5, 0.6, 0.7) q[0], q[1];
)");
  EXPECT_GT(prog.circuit.size(), 2u);
  sv::Simulator sim(2);
  sim.run(prog.circuit);
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-12);
}

TEST(Qasm, MeasureAndRegisters) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
measure q[0] -> c[0];
measure q -> c;
)");
  EXPECT_EQ(prog.measurements.size(), 3u);
  EXPECT_EQ(prog.measurements[0], (std::pair<qubit_t, qubit_t>{0, 0}));
  EXPECT_EQ(prog.cregs.at("c").size, 2u);
  EXPECT_EQ(prog.circuit.stats().n_measure, 3u);
}

TEST(Qasm, ResetAndBarrier) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
barrier q;
reset q[0];
)");
  EXPECT_EQ(prog.circuit.size(), 3u);
  EXPECT_EQ(prog.circuit[1].kind, GateKind::kBarrier);
  EXPECT_EQ(prog.circuit[2].kind, GateKind::kReset);
}

TEST(Qasm, OpaqueIsSkipped) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
opaque mystery(a, b) q, r;
qreg q[1];
U(0,0,0) q[0];
)");
  EXPECT_EQ(prog.circuit.size(), 1u);
}

TEST(Qasm, Comments) {
  const auto prog = parse_qasm(
      "OPENQASM 2.0; // header\nqreg q[1]; // reg\n// nothing\nU(0,0,0) "
      "q[0];\n");
  EXPECT_EQ(prog.circuit.size(), 1u);
}

TEST(Qasm, ErrorsCarryLocation) {
  try {
    parse_qasm("OPENQASM 2.0;\nqreg q[2];\nbadgate q[0];\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("badgate"), std::string::npos);
  }
}

TEST(Qasm, RejectsClassicalConditionals) {
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
creg c[1];
if (c==1) x q[0];
)"),
               ParseError);
}

TEST(Qasm, RejectsBadIndices) {
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nU(0,0,0) q[2];\n"),
               ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[0];\n"), ParseError);
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[3];\n"),
               ParseError);
}

TEST(Qasm, RejectsWrongArity) {
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
rx(0.1, 0.2) q[0];
)"),
               ParseError);
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
cx q[0];
)"),
               ParseError);
}

TEST(Qasm, EmptyProgramYieldsEmptyCircuit) {
  const auto prog = parse_qasm("OPENQASM 2.0;\nqreg q[3];\n");
  EXPECT_EQ(prog.circuit.n_qubits(), 3u);
  EXPECT_TRUE(prog.circuit.empty());
}

TEST(Qasm, RoundTripThroughToQasm) {
  Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.25).ccx(0, 1, 2).swap(1, 2).t(0).measure(0);
  const std::string text = to_qasm(c);
  const auto prog = parse_qasm(text);
  ASSERT_EQ(prog.circuit.size(), c.size());
  // Equivalence via the simulator (ignoring the measure at the end).
  Circuit c2(3), r2(3);
  for (std::size_t i = 0; i + 1 < c.size(); ++i) c2.append(c[i]);
  for (std::size_t i = 0; i + 1 < prog.circuit.size(); ++i)
    r2.append(prog.circuit[i]);
  sv::Simulator a(3), b(3);
  a.run(c2);
  b.run(r2);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-12);
}

}  // namespace
}  // namespace memq::circuit
