// Property-based differential oracle: seeded random circuits through the
// MemQSim engine under a matrix of storage-plane configurations (codec
// threads x blob backend x cache budget), checked amplitude-by-amplitude
// against the dense reference engine. Every case is reproducible: on any
// mismatch the failure message is a one-line reproducer (seed + config),
// never a flake.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/batch_scheduler.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

struct CaseConfig {
  std::uint32_t codec_threads;
  StoreBackend backend;
  std::uint64_t cache_chunks;  ///< cache budget in chunks (0 = cache off)
};

// The storage-plane matrix from the issue: {1, 4} codec threads x
// {ram, file} backends x {off, small} cache budgets.
const CaseConfig kMatrix[] = {
    {1, StoreBackend::kRam, 0},  {1, StoreBackend::kRam, 4},
    {1, StoreBackend::kFile, 0}, {1, StoreBackend::kFile, 4},
    {4, StoreBackend::kRam, 0},  {4, StoreBackend::kRam, 4},
    {4, StoreBackend::kFile, 0}, {4, StoreBackend::kFile, 4},
};

EngineConfig make_cfg(const CaseConfig& c, qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.bound = 1e-7;
  cfg.codec_threads = c.codec_threads;
  cfg.store_backend = c.backend;
  cfg.host_blob_budget_bytes = 0;  // file backend: every access spills
  cfg.cache_budget_bytes =
      c.cache_chunks * (sizeof(amp_t) << chunk_qubits);
  return cfg;
}

std::string reproducer(std::uint64_t seed, qubit_t n, std::size_t depth,
                       qubit_t chunk_qubits, const CaseConfig& c) {
  std::ostringstream os;
  os << "reproducer: seed=" << seed << " qubits=" << int(n)
     << " depth=" << depth << " chunk_qubits=" << int(chunk_qubits)
     << " codec_threads=" << c.codec_threads << " backend="
     << (c.backend == StoreBackend::kRam ? "ram" : "file")
     << " cache_chunks=" << c.cache_chunks;
  return os.str();
}

// Lossy-codec error compounds once per decode/encode round trip, one per
// stage a chunk participates in. A value-range-relative bound of 1e-7 over
// a few dozen stages stays far below 1e-4; a real defect (wrong amplitude,
// stale chunk, lost write-back) shows up at O(1).
constexpr double kTolerance = 1e-4;

TEST(DifferentialOracle, RandomCircuitsMatchDenseReference) {
  constexpr int kCases = 16;
  for (int i = 0; i < kCases; ++i) {
    const std::uint64_t seed = 9000 + static_cast<std::uint64_t>(i);
    Prng rng(seed);
    const qubit_t n = static_cast<qubit_t>(4 + rng.uniform_index(9));  // 4..12
    const std::size_t depth = 3 + static_cast<std::size_t>(rng.uniform_index(5));
    // Chunks strictly smaller than the state, so non-local stages happen.
    const qubit_t chunk_qubits = static_cast<qubit_t>(
        2 + rng.uniform_index(static_cast<std::uint64_t>(n - 2)));
    const CaseConfig& cc = kMatrix[static_cast<std::size_t>(i) %
                                   (sizeof(kMatrix) / sizeof(kMatrix[0]))];
    const std::string repro = reproducer(seed, n, depth, chunk_qubits, cc);
    SCOPED_TRACE(repro);

    const auto circ = circuit::make_random_circuit(n, depth, seed,
                                                   /*haar_1q=*/true);
    auto oracle = make_engine(EngineKind::kDense, n, EngineConfig{});
    oracle->run(circ);
    const auto expected = oracle->to_dense();

    auto engine = make_engine(EngineKind::kMemQSim, n,
                              make_cfg(cc, chunk_qubits));
    engine->run(circ);
    const auto got = engine->to_dense();

    double max_err = 0.0;
    index_t worst = 0;
    for (index_t k = 0; k < dim_of(n); ++k) {
      const double err = std::abs(got.amplitude(k) - expected.amplitude(k));
      if (err > max_err) {
        max_err = err;
        worst = k;
      }
    }
    if (max_err >= kTolerance) {
      ADD_FAILURE() << "amplitude " << worst << " off by " << max_err
                    << " (tolerance " << kTolerance << ")\n  " << repro;
      continue;
    }
    // Norm must survive the round trips too.
    EXPECT_NEAR(engine->norm(), 1.0, 1e-6) << repro;
  }
}

TEST(DifferentialOracle, CacheOnAndOffAgreeWithinBound) {
  // The write-back cache skips lossy round trips, so cached and uncached
  // runs need not be bit-identical — but both must stay within the codec
  // bound of the same truth, hence within 2x tolerance of each other.
  const std::uint64_t seed = 1234;
  const qubit_t n = 8;
  const auto circ = circuit::make_random_circuit(n, 5, seed, true);
  CaseConfig off{1, StoreBackend::kFile, 0};
  CaseConfig on{1, StoreBackend::kFile, 4};
  auto a = make_engine(EngineKind::kMemQSim, n, make_cfg(off, 4));
  auto b = make_engine(EngineKind::kMemQSim, n, make_cfg(on, 4));
  a->run(circ);
  b->run(circ);
  const auto da = a->to_dense();
  const auto db = b->to_dense();
  for (index_t k = 0; k < dim_of(n); ++k)
    ASSERT_LT(std::abs(da.amplitude(k) - db.amplitude(k)), 2 * kTolerance)
        << "amplitude " << k << "; "
        << reproducer(seed, n, 5, 4, on);
}

TEST(DifferentialOracle, SharedDictionariesMatchDenseReference) {
  // ISSUE 6: a shared trained dictionary changes encoded bytes only, never
  // decoded amplitudes — runs with dictionaries on must match the dense
  // oracle exactly as tightly as runs without.
  for (const std::uint64_t seed : {4242ull, 4243ull, 4244ull}) {
    const qubit_t n = 10;
    const std::size_t depth = 6;
    const auto circ = circuit::make_random_circuit(n, depth, seed, true);
    auto oracle = make_engine(EngineKind::kDense, n, EngineConfig{});
    oracle->run(circ);
    const auto expected = oracle->to_dense();

    CaseConfig cc{4, StoreBackend::kFile, 4};
    EngineConfig cfg = make_cfg(cc, 5);
    cfg.codec.dict_mode = compress::DictMode::kTrain;
    auto engine = make_engine(EngineKind::kMemQSim, n, cfg);
    engine->run(circ);
    const auto got = engine->to_dense();

    for (index_t k = 0; k < dim_of(n); ++k)
      ASSERT_LT(std::abs(got.amplitude(k) - expected.amplitude(k)),
                kTolerance)
          << "amplitude " << k << " with dictionaries on; "
          << reproducer(seed, n, depth, 5, cc) << " codec_dict=train";
  }
}

TEST(DifferentialOracle, DedupOnAndOffAreBitIdentical) {
  // ISSUE 7: dedup is a storage-plane property — amplitudes must be
  // bit-identical with --dedup on and off on every matrix arm, lossy codec
  // included (the constant tag is always-on in BOTH arms, so the byte
  // streams fed to the codec never diverge).
  for (std::size_t m = 0; m < sizeof(kMatrix) / sizeof(kMatrix[0]); ++m) {
    const CaseConfig& cc = kMatrix[m];
    const std::uint64_t seed = 5100 + m;
    const qubit_t n = 9;
    const auto circ = circuit::make_random_circuit(n, 5, seed, true);
    EngineConfig on_cfg = make_cfg(cc, 4);
    EngineConfig off_cfg = on_cfg;
    off_cfg.dedup = false;
    auto on = make_engine(EngineKind::kMemQSim, n, on_cfg);
    auto off = make_engine(EngineKind::kMemQSim, n, off_cfg);
    on->run(circ);
    off->run(circ);
    const auto da = on->to_dense();
    const auto db = off->to_dense();
    for (index_t k = 0; k < dim_of(n); ++k) {
      const amp_t x = da.amplitude(k);
      const amp_t y = db.amplitude(k);
      ASSERT_TRUE(x.real() == y.real() && x.imag() == y.imag())
          << "amplitude " << k << " differs between dedup on/off; "
          << reproducer(seed, n, 5, 4, cc);
    }
  }
}

TEST(DifferentialOracle, DedupMatchesDenseOnRedundantStates) {
  // A redundancy-heavy circuit (H-wall into QFT keeps long runs of
  // identical chunks live) with dedup on must still track the dense oracle
  // — and must actually have deduped, or the arm tests nothing.
  const qubit_t n = 10;
  circuit::Circuit circ(n);
  for (qubit_t q = 0; q < n; ++q) circ.h(q);
  circ.append(circuit::make_qft(n));

  auto oracle = make_engine(EngineKind::kDense, n, EngineConfig{});
  oracle->run(circ);
  const auto expected = oracle->to_dense();

  for (const StoreBackend backend :
       {StoreBackend::kRam, StoreBackend::kFile}) {
    CaseConfig cc{1, backend, 0};
    auto engine = make_engine(EngineKind::kMemQSim, n, make_cfg(cc, 5));
    engine->run(circ);
    const auto got = engine->to_dense();
    for (index_t k = 0; k < dim_of(n); ++k)
      ASSERT_LT(std::abs(got.amplitude(k) - expected.amplitude(k)),
                kTolerance)
          << "amplitude " << k << " backend "
          << (backend == StoreBackend::kRam ? "ram" : "file");
    EXPECT_GT(engine->telemetry().dedup_hits, 0u);
    EXPECT_GT(engine->telemetry().constant_chunks_stored, 0u);
  }
}

TEST(DifferentialOracle, ThreadCountsAreBitIdentical) {
  // The codec pipeline's contract (PR "multithreaded codec pipeline"):
  // results are bit-identical across codec_threads, only timing changes.
  const std::uint64_t seed = 777;
  const qubit_t n = 9;
  const auto circ = circuit::make_random_circuit(n, 5, seed, true);
  CaseConfig serial{1, StoreBackend::kFile, 0};
  CaseConfig fanned{4, StoreBackend::kFile, 0};
  auto a = make_engine(EngineKind::kMemQSim, n, make_cfg(serial, 4));
  auto b = make_engine(EngineKind::kMemQSim, n, make_cfg(fanned, 4));
  a->run(circ);
  b->run(circ);
  const auto da = a->to_dense();
  const auto db = b->to_dense();
  for (index_t k = 0; k < dim_of(n); ++k) {
    const amp_t x = da.amplitude(k);
    const amp_t y = db.amplitude(k);
    ASSERT_TRUE(x.real() == y.real() && x.imag() == y.imag())
        << "amplitude " << k << " differs across thread counts; "
        << reproducer(seed, n, 5, 4, fanned);
  }
}

TEST(DifferentialOracle, PlanOptOnAndOffBothMatchDense) {
  // ISSUE 8: the plan optimizer reorders gates only along provably
  // commuting DAG edges, so BOTH arms must track the dense oracle run on
  // the as-written circuit. (The matrix test above already runs with the
  // default plan_opt=on; this pins the off arm and the on/off agreement.)
  for (std::size_t m = 0; m < sizeof(kMatrix) / sizeof(kMatrix[0]); ++m) {
    const CaseConfig& cc = kMatrix[m];
    const std::uint64_t seed = 8800 + m;
    Prng rng(seed);
    const qubit_t n = static_cast<qubit_t>(5 + rng.uniform_index(6));
    const qubit_t chunk = static_cast<qubit_t>(
        2 + rng.uniform_index(static_cast<std::uint64_t>(n - 2)));
    const auto circ = circuit::make_random_circuit(n, 5, seed, true);
    const std::string repro = reproducer(seed, n, 5, chunk, cc);

    auto oracle = make_engine(EngineKind::kDense, n, EngineConfig{});
    oracle->run(circ);
    const auto expected = oracle->to_dense();

    for (const bool plan_opt : {true, false}) {
      EngineConfig cfg = make_cfg(cc, chunk);
      cfg.plan_opt = plan_opt;
      auto engine = make_engine(EngineKind::kMemQSim, n, cfg);
      engine->run(circ);
      const auto got = engine->to_dense();
      for (index_t k = 0; k < dim_of(n); ++k)
        ASSERT_LT(std::abs(got.amplitude(k) - expected.amplitude(k)),
                  kTolerance)
            << "amplitude " << k << " plan_opt="
            << (plan_opt ? "on" : "off") << "; " << repro;
    }
  }
}

TEST(DifferentialOracle, BatchMembersBitIdenticalToSerialAcrossMatrix) {
  // ISSUE 10: the batch-vs-serial oracle. Every member of a K-batch must be
  // BIT-identical to its own serial run (fresh engine, seed + m) across
  // {codec_threads} x {ram, file} x {dedup on, off} x {cache budgets}.
  // Cache-off arms run the default lossy szq — the batch pays exactly the
  // same codec round trips per chunk as the serial run, so even lossy
  // results match bit for bit. Cache-on arms switch to the lossless null
  // codec: a cache lets the serial run skip lossy round trips the batch
  // fan-out forces, so szq bit-identity is only contractual with the cache
  // off (see core/batch_scheduler.hpp).
  constexpr std::uint32_t kK = 4;
  for (std::size_t m = 0; m < sizeof(kMatrix) / sizeof(kMatrix[0]); ++m) {
    for (const bool dedup : {true, false}) {
      const CaseConfig& cc = kMatrix[m];
      const std::uint64_t seed = 10100 + m;
      const qubit_t n = 7;
      const qubit_t chunk = 4;
      EngineConfig cfg = make_cfg(cc, chunk);
      cfg.dedup = dedup;
      cfg.batch_size = kK;
      if (cc.cache_chunks != 0) cfg.codec.compressor = "null";
      const std::string repro = reproducer(seed, n, 4, chunk, cc) +
                                " batch=4 dedup=" + (dedup ? "on" : "off") +
                                " codec=" + cfg.codec.compressor;
      SCOPED_TRACE(repro);

      // Shared random prefix, then a member-specific rotation — the fork
      // tree shares the prefix and executes the tails solo.
      std::vector<circuit::Circuit> members;
      for (std::uint32_t k = 0; k < kK; ++k) {
        circuit::Circuit c = circuit::make_random_circuit(n, 4, seed, true);
        c.rz(0, 0.3 + 0.4 * static_cast<double>(k));
        members.push_back(std::move(c));
      }

      BatchScheduler batch(n, cfg);
      batch.run(members);
      for (std::uint32_t k = 0; k < kK; ++k) {
        EngineConfig one = cfg;
        one.batch_size = 1;
        one.seed = cfg.seed + k;
        auto serial = make_engine(EngineKind::kMemQSim, n, one);
        serial->run(members[k]);
        const auto expected = serial->to_dense();
        const auto got = batch.member_dense(k);
        for (index_t i = 0; i < dim_of(n); ++i) {
          const amp_t x = got.amplitude(i);
          const amp_t y = expected.amplitude(i);
          ASSERT_TRUE(x.real() == y.real() && x.imag() == y.imag())
              << "member " << k << " amplitude " << i
              << " differs from its serial run; " << repro;
        }
      }
    }
  }
}

}  // namespace
}  // namespace memq::core
