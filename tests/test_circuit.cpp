#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace memq::circuit {
namespace {

TEST(Circuit, FluentBuilding) {
  Circuit c(3);
  c.h(0).cx(0, 1).cx(1, 2);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].kind, GateKind::kH);
  EXPECT_EQ(c[2].controls[0], 1u);
}

TEST(Circuit, RejectsBadQubitCount) {
  EXPECT_THROW(Circuit(0), Error);
  EXPECT_THROW(Circuit(63), Error);
  EXPECT_NO_THROW(Circuit(1));
  EXPECT_NO_THROW(Circuit(62));
}

TEST(Circuit, RejectsOutOfRangeQubit) {
  Circuit c(2);
  EXPECT_THROW(c.h(2), Error);
  EXPECT_THROW(c.cx(0, 5), Error);
}

TEST(Circuit, RejectsRepeatedQubit) {
  Circuit c(3);
  EXPECT_THROW(c.cx(1, 1), Error);
  EXPECT_THROW(c.append(Gate::ccx(0, 0, 1)), Error);
  EXPECT_THROW(c.swap(2, 2), Error);
}

TEST(Circuit, RejectsMalformedGates) {
  Circuit c(3);
  Gate no_targets{GateKind::kX, {}, {}, {}};
  EXPECT_THROW(c.append(no_targets), Error);
  Gate swap_one{GateKind::kSwap, {0}, {}, {}};
  EXPECT_THROW(c.append(swap_one), Error);
  Gate x_two{GateKind::kX, {0, 1}, {}, {}};
  EXPECT_THROW(c.append(x_two), Error);
}

TEST(Circuit, AppendCircuit) {
  Circuit a(2), b(2);
  a.h(0);
  b.cx(0, 1).x(1);
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  Circuit wrong(3);
  EXPECT_THROW(a.append(wrong), Error);
}

TEST(Circuit, StatsCountsAndDepth) {
  Circuit c(3);
  c.h(0).h(1).cx(0, 1).rz(2, 0.1).ccx(0, 1, 2);
  const CircuitStats st = c.stats();
  EXPECT_EQ(st.n_gates, 5u);
  EXPECT_EQ(st.n_1q, 3u);
  EXPECT_EQ(st.n_2q, 1u);
  EXPECT_EQ(st.n_multi, 1u);
  EXPECT_EQ(st.n_diagonal, 1u);  // rz
  EXPECT_EQ(st.by_name.at("h"), 2u);
  EXPECT_EQ(st.by_name.at("cx"), 1u);
  EXPECT_EQ(st.by_name.at("ccx"), 1u);
  // Layers: {h0, h1, rz2} | {cx01} | {ccx012} -> depth 3.
  EXPECT_EQ(st.depth, 3u);
}

TEST(Circuit, DepthParallelGates) {
  Circuit c(4);
  c.h(0).h(1).h(2).h(3);
  EXPECT_EQ(c.stats().depth, 1u);
  c.cx(0, 1).cx(2, 3);
  EXPECT_EQ(c.stats().depth, 2u);
  c.cx(1, 2);
  EXPECT_EQ(c.stats().depth, 3u);
}

TEST(Circuit, BarrierForcesLayerBoundary) {
  Circuit c(2);
  c.h(0);
  c.append(Gate::barrier({0, 1}));
  c.h(1);
  // Without the barrier h(1) would share layer 1 with h(0).
  EXPECT_EQ(c.stats().depth, 2u);
}

TEST(Circuit, InverseReversesAndInverts) {
  Circuit c(2);
  c.h(0).t(0).cx(0, 1).rz(1, 0.7);
  const Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 4u);
  EXPECT_EQ(inv[0].kind, GateKind::kRZ);
  EXPECT_DOUBLE_EQ(inv[0].params[0], -0.7);
  EXPECT_EQ(inv[1].kind, GateKind::kX);  // cx self-inverse
  EXPECT_EQ(inv[2].kind, GateKind::kTdg);
  EXPECT_EQ(inv[3].kind, GateKind::kH);
}

TEST(Circuit, InverseOfMeasureThrows) {
  Circuit c(1);
  c.measure(0);
  EXPECT_THROW(c.inverse(), Error);
  EXPECT_TRUE(c.has_nonunitary());
}

TEST(Circuit, ToStringListsGates) {
  Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string s = c.to_string();
  EXPECT_NE(s.find("h q0"), std::string::npos);
  EXPECT_NE(s.find("cx q0, q1"), std::string::npos);
}

TEST(Circuit, MeasureCountsInStats) {
  Circuit c(2);
  c.h(0).measure(0).measure(1);
  EXPECT_EQ(c.stats().n_measure, 2u);
}

}  // namespace
}  // namespace memq::circuit
