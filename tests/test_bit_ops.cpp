#include "common/bit_ops.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace memq::bits {
namespace {

TEST(BitOps, TestSetClearFlip) {
  EXPECT_FALSE(test(0b1010, 0));
  EXPECT_TRUE(test(0b1010, 1));
  EXPECT_EQ(set(0b1010, 0), 0b1011u);
  EXPECT_EQ(clear(0b1010, 1), 0b1000u);
  EXPECT_EQ(flip(0b1010, 3), 0b0010u);
  EXPECT_EQ(flip(0b1010, 0), 0b1011u);
}

TEST(BitOps, InsertZeroAtBitZero) {
  // Inserting at bit 0 doubles the value.
  for (index_t x : {0ull, 1ull, 5ull, 1023ull})
    EXPECT_EQ(insert_zero(x, 0), x << 1);
}

TEST(BitOps, InsertZeroPreservesOtherBits) {
  // x = 0b1011, insert zero at position 2 -> 0b10011.
  EXPECT_EQ(insert_zero(0b1011, 2), 0b10011u);
  // Inserting above all set bits is a no-op.
  EXPECT_EQ(insert_zero(0b1011, 10), 0b1011u);
}

TEST(BitOps, InsertZeroEnumeratesZeroBitIndices) {
  // insert_zero(k, b) for k in [0, 2^(n-1)) enumerates exactly the indices
  // in [0, 2^n) with bit b clear — the gate-kernel invariant.
  constexpr qubit_t n = 6;
  for (qubit_t b = 0; b < n; ++b) {
    std::vector<index_t> got;
    for (index_t k = 0; k < (index_t{1} << (n - 1)); ++k) {
      const index_t idx = insert_zero(k, b);
      EXPECT_FALSE(test(idx, b));
      EXPECT_LT(idx, index_t{1} << n);
      got.push_back(idx);
    }
    // Strictly increasing => all distinct.
    for (std::size_t i = 1; i < got.size(); ++i)
      EXPECT_LT(got[i - 1], got[i]);
  }
}

TEST(BitOps, InsertTwoZeros) {
  constexpr qubit_t n = 6;
  const qubit_t lo = 1, hi = 4;
  for (index_t k = 0; k < (index_t{1} << (n - 2)); ++k) {
    const index_t idx = insert_two_zeros(k, lo, hi);
    EXPECT_FALSE(test(idx, lo));
    EXPECT_FALSE(test(idx, hi));
  }
}

TEST(BitOps, Pow2AndLog) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(index_t{1} << 40), 40u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(BitOps, ReverseLowBits) {
  EXPECT_EQ(reverse_low_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_low_bits(0b110, 3), 0b011u);
  // Involution property on random values.
  Prng rng(7);
  for (int i = 0; i < 100; ++i) {
    const index_t x = rng.next_u64() & 0xFFFF;
    EXPECT_EQ(reverse_low_bits(reverse_low_bits(x, 16), 16), x);
  }
}

}  // namespace
}  // namespace memq::bits
