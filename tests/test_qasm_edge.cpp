// QASM parser edge cases beyond the core suite: shadowing, numeric formats,
// deep nesting, qelib1 long-tail gates, and error quality.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

TEST(QasmEdge, NumericLiteralFormats) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
qreg q[1];
U(1e-2, .5, 2.5E+1) q[0];
)");
  ASSERT_EQ(prog.circuit.size(), 1u);
  EXPECT_DOUBLE_EQ(prog.circuit[0].params[0], 0.01);
  EXPECT_DOUBLE_EQ(prog.circuit[0].params[1], 0.5);
  EXPECT_DOUBLE_EQ(prog.circuit[0].params[2], 25.0);
}

TEST(QasmEdge, FirstGateDefinitionWins) {
  // Redefining a qelib1 name keeps the original (native) meaning — the
  // "first definition wins" rule documented in the parser.
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate h a { x a; }
qreg q[1];
h q[0];
)");
  ASSERT_EQ(prog.circuit.size(), 1u);
  EXPECT_EQ(prog.circuit[0].kind, GateKind::kH);
}

TEST(QasmEdge, DeeplyNestedDefinitions) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate l1(t) a { rz(t) a; }
gate l2(t) a { l1(t/2) a; l1(t/2) a; }
gate l3(t) a { l2(t*2) a; }
gate l4(t) a, b { l3(t) a; l3(-t) b; }
qreg q[2];
l4(0.5) q[0], q[1];
)");
  ASSERT_EQ(prog.circuit.size(), 4u);
  EXPECT_DOUBLE_EQ(prog.circuit[0].params[0], 0.5);
  EXPECT_DOUBLE_EQ(prog.circuit[2].params[0], -0.5);
}

TEST(QasmEdge, Qelib1LongTailGates) {
  // crx / cry / rzz / sx / u0 come from the embedded qelib1 definitions.
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
crx(0.3) q[0], q[1];
cry(0.4) q[0], q[1];
rzz(0.5) q[0], q[1];
u0(1) q[0];
)");
  sv::Simulator sim(2);
  sim.run(prog.circuit);
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-12);
  // Everything controlled on |0> controls: state remains |00>.
  EXPECT_NEAR(std::abs(sim.state().amplitude(0)), 1.0, 1e-9);
}

TEST(QasmEdge, CryMatchesNativeControlledRy) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cry(0.8) q[0], q[1];
)");
  sv::Simulator a(2), b(2);
  a.run(prog.circuit);
  Circuit native(2);
  native.h(0);
  native.append(Gate::ry(1, 0.8).with_controls({0}));
  b.run(native);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-12);
}

TEST(QasmEdge, WholeRegisterReset) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q;
reset q;
)");
  EXPECT_EQ(prog.circuit.size(), 6u);
  sv::Simulator sim(3);
  sim.run(prog.circuit);
  EXPECT_NEAR(std::abs(sim.state().amplitude(0)), 1.0, 1e-12);
}

TEST(QasmEdge, GateBodyBarrierIgnored) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
gate fenced a, b { h a; barrier a, b; cx a, b; }
qreg q[2];
fenced q[0], q[1];
)");
  EXPECT_EQ(prog.circuit.size(), 2u);
}

TEST(QasmEdge, MissingIncludeFileFails) {
  EXPECT_THROW(parse_qasm("OPENQASM 2.0;\ninclude \"nope.inc\";\n"),
               ParseError);
}

TEST(QasmEdge, MeasureShapeMismatchFails) {
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[2];
measure q -> c;
)"),
               ParseError);
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
measure q[0] -> c;
)"),
               ParseError);
}

TEST(QasmEdge, SelfReferentialGateFails) {
  // A gate calling itself should be rejected (unknown at definition use
  // time -> the body op resolves to... itself recursively at APPLY time;
  // our expander must not hang). First-definition-wins means the inner
  // call resolves to the same def: guard via the unknown-name error when
  // no base case exists.
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
gate loop a { loop a; }
qreg q[1];
loop q[0];
)"),
               Error);
}

TEST(QasmEdge, UnterminatedGateBodyFails) {
  EXPECT_THROW(parse_qasm(R"(
OPENQASM 2.0;
gate broken a { h a;
qreg q[1];
)"),
               ParseError);
}

TEST(QasmEdge, DivisionInExpressions) {
  const auto prog = parse_qasm(R"(
OPENQASM 2.0;
qreg q[1];
U(pi/2/2, 3/4/3, 0) q[0];
)");
  EXPECT_NEAR(prog.circuit[0].params[0], kPi / 4, 1e-12);
  EXPECT_NEAR(prog.circuit[0].params[1], 0.25, 1e-12);  // left associative
}

}  // namespace
}  // namespace memq::circuit
