#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq {
namespace {

TEST(RunningStats, Basics) {
  RunningStats st;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) st.add(x);
  EXPECT_EQ(st.count(), 8u);
  EXPECT_DOUBLE_EQ(st.mean(), 5.0);
  EXPECT_NEAR(st.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(st.min(), 2.0);
  EXPECT_DOUBLE_EQ(st.max(), 9.0);
  EXPECT_DOUBLE_EQ(st.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Prng rng(11);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> s{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(s, 0), 10);
  EXPECT_DOUBLE_EQ(percentile(s, 100), 40);
  EXPECT_DOUBLE_EQ(percentile(s, 50), 25);
  EXPECT_DOUBLE_EQ(percentile({5.0}, 73), 5.0);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), Error);
  EXPECT_THROW(percentile({1.0}, -1), Error);
  EXPECT_THROW(percentile({1.0}, 101), Error);
}

TEST(ChiSquared, ZeroForPerfectFit) {
  const std::vector<std::uint64_t> obs{25, 25, 25, 25};
  const std::vector<double> p{0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(chi_squared(obs, p), 0.0);
}

TEST(ChiSquared, DetectsSkew) {
  const std::vector<std::uint64_t> obs{90, 10};
  const std::vector<double> p{0.5, 0.5};
  EXPECT_GT(chi_squared(obs, p), chi_squared_critical(1, 0.001));
}

TEST(ChiSquaredCritical, KnownValues) {
  // chi2(0.05, 1) = 3.841; chi2(0.05, 10) = 18.307 (tables).
  EXPECT_NEAR(chi_squared_critical(1, 0.05), 3.841, 0.2);
  EXPECT_NEAR(chi_squared_critical(10, 0.05), 18.307, 0.2);
  EXPECT_NEAR(chi_squared_critical(100, 0.01), 135.807, 1.0);
}

}  // namespace
}  // namespace memq
