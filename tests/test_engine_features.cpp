// Engine-level features beyond the core run loop: chunk-wise Pauli
// expectations, state checkpointing, and the 1q-fusion offline pass.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig cfg_with_chunk(qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.bound = 1e-9;
  return cfg;
}

std::string temp_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("memq_test_") + tag + "_" +
           std::to_string(::getpid()) + ".ckpt"))
      .string();
}

// ---------------------------------------------------------------------------
// Expectations
// ---------------------------------------------------------------------------

TEST(Expectation, BellStateStabilizers) {
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kWu,
                                EngineKind::kMemQSim}) {
    auto engine = make_engine(kind, 2, cfg_with_chunk(1));
    Circuit c(2);
    c.h(0).cx(0, 1);
    engine->run(c);
    EXPECT_NEAR(engine->expectation({"ZZ"}), 1.0, 1e-6)
        << engine_kind_name(kind);
    EXPECT_NEAR(engine->expectation({"XX"}), 1.0, 1e-6);
    EXPECT_NEAR(engine->expectation({"YY"}), -1.0, 1e-6);
    EXPECT_NEAR(engine->expectation({"ZI"}), 0.0, 1e-6);
    EXPECT_NEAR(engine->expectation({"II"}), 1.0, 1e-6);
  }
}

TEST(Expectation, MatchesDenseOracleOnRandomCircuits) {
  constexpr qubit_t n = 7;
  const Circuit c = circuit::make_random_circuit(n, 8, 31);
  auto dense = make_engine(EngineKind::kDense, n, cfg_with_chunk(3));
  auto memq = make_engine(EngineKind::kMemQSim, n, cfg_with_chunk(3));
  dense->run(c);
  memq->run(c);

  Prng rng(5);
  for (int trial = 0; trial < 25; ++trial) {
    std::string ops(n, 'I');
    for (qubit_t q = 0; q < n; ++q)
      ops[q] = "IXYZ"[rng.uniform_index(4)];
    EXPECT_NEAR(memq->expectation({ops}), dense->expectation({ops}), 1e-5)
        << ops;
  }
}

TEST(Expectation, HighQubitPaulisCrossChunks) {
  // X/Y on qubits >= chunk_qubits exercise the chunk-partner path.
  constexpr qubit_t n = 6;
  const Circuit c = circuit::make_random_circuit(n, 6, 41);
  auto dense = make_engine(EngineKind::kDense, n, cfg_with_chunk(2));
  auto memq = make_engine(EngineKind::kMemQSim, n, cfg_with_chunk(2));
  dense->run(c);
  memq->run(c);
  for (const char* ops : {"IIIIXI", "IIIIIX", "IIIIYX", "IIIIZX", "IIXIXI",
                          "ZIIIIX", "YYYYYY", "XXXXXX"}) {
    EXPECT_NEAR(memq->expectation({ops}), dense->expectation({ops}), 1e-5)
        << ops;
  }
}

TEST(Expectation, GhzParity) {
  constexpr qubit_t n = 8;
  auto engine = make_engine(EngineKind::kMemQSim, n, cfg_with_chunk(4));
  engine->run(circuit::make_ghz(n));
  // X^n is a GHZ stabilizer; single Z has zero expectation.
  EXPECT_NEAR(engine->expectation({std::string(n, 'X')}), 1.0, 1e-6);
  std::string one_z(n, 'I');
  one_z[3] = 'Z';
  EXPECT_NEAR(engine->expectation({one_z}), 0.0, 1e-6);
  // Pairwise ZZ correlations are +1.
  std::string zz(n, 'I');
  zz[1] = 'Z';
  zz[6] = 'Z';
  EXPECT_NEAR(engine->expectation({zz}), 1.0, 1e-6);
}

TEST(Expectation, RejectsBadStrings) {
  auto engine = make_engine(EngineKind::kMemQSim, 4, cfg_with_chunk(2));
  EXPECT_THROW((void)engine->expectation({"XX"}), Error);
  EXPECT_THROW((void)engine->expectation({"XXQX"}), Error);
}

// ---------------------------------------------------------------------------
// Checkpointing
// ---------------------------------------------------------------------------

TEST(Checkpoint, RoundTripPreservesState) {
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kWu,
                                EngineKind::kMemQSim}) {
    const std::string path = temp_path(engine_kind_name(kind));
    constexpr qubit_t n = 7;
    const Circuit c = circuit::make_random_circuit(n, 6, 21);
    auto engine = make_engine(kind, n, cfg_with_chunk(3));
    engine->run(c);
    const sv::StateVector before = engine->to_dense();
    engine->save_state(path);

    engine->reset();
    EXPECT_NEAR(std::abs(engine->amplitude(0)), 1.0, 1e-9);
    engine->load_state(path);
    EXPECT_LT(engine->to_dense().max_abs_diff(before), 1e-12)
        << engine_kind_name(kind);
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, ResumeContinuesCorrectly) {
  // Run half a circuit, checkpoint, restore into a FRESH engine, run the
  // second half: must match an uninterrupted run.
  constexpr qubit_t n = 8;
  const std::string path = temp_path("resume");
  const Circuit full = circuit::make_qft(n);
  Circuit first(n), second(n);
  for (std::size_t i = 0; i < full.size(); ++i)
    (i < full.size() / 2 ? first : second).append(full[i]);

  const EngineConfig cfg = cfg_with_chunk(4);
  auto a = make_engine(EngineKind::kMemQSim, n, cfg);
  a->run(first);
  a->save_state(path);

  auto b = make_engine(EngineKind::kMemQSim, n, cfg);
  b->load_state(path);
  b->run(second);

  auto oracle = make_engine(EngineKind::kMemQSim, n, cfg);
  oracle->run(full);
  EXPECT_LT(b->to_dense().max_abs_diff(oracle->to_dense()), 1e-6);
  std::remove(path.c_str());
}

TEST(Checkpoint, GeometryMismatchRejected) {
  const std::string path = temp_path("geom");
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg_with_chunk(3));
  engine->run(circuit::make_ghz(6));
  engine->save_state(path);

  auto wrong_chunks = make_engine(EngineKind::kMemQSim, 6, cfg_with_chunk(4));
  EXPECT_THROW(wrong_chunks->load_state(path), Error);
  auto wrong_width = make_engine(EngineKind::kMemQSim, 7, cfg_with_chunk(3));
  EXPECT_THROW(wrong_width->load_state(path), Error);

  EngineConfig other_codec = cfg_with_chunk(3);
  other_codec.codec.compressor = "gorilla";
  auto wrong_codec = make_engine(EngineKind::kMemQSim, 6, other_codec);
  EXPECT_THROW(wrong_codec->load_state(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptFileRejected) {
  const std::string path = temp_path("corrupt");
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg_with_chunk(3));
  engine->run(circuit::make_w_state(6));
  engine->save_state(path);

  // Flip one byte in the blob region.
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::streamoff>(f.tellg());
  f.seekp(size - 9);
  char byte = 0;
  f.read(&byte, 1);
  f.seekp(size - 9);
  byte = static_cast<char>(byte ^ 0x40);
  f.write(&byte, 1);
  f.close();

  auto fresh = make_engine(EngineKind::kMemQSim, 6, cfg_with_chunk(3));
  EXPECT_THROW(fresh->load_state(path), Error);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileRejected) {
  auto engine = make_engine(EngineKind::kMemQSim, 4, cfg_with_chunk(2));
  EXPECT_THROW(engine->load_state("/nonexistent/dir/x.ckpt"), Error);
}

// ---------------------------------------------------------------------------
// 1q fusion inside the engine
// ---------------------------------------------------------------------------

TEST(EngineFusion, FusedRunMatchesUnfused) {
  constexpr qubit_t n = 8;
  // A circuit with real 1q runs (rotation chains between entanglers).
  Circuit c(n);
  for (int layer = 0; layer < 4; ++layer) {
    for (qubit_t q = 0; q < n; ++q) {
      c.rz(q, 0.1 * (layer + 1));
      c.ry(q, 0.2 * (q + 1));
      c.rz(q, -0.05);
    }
    for (qubit_t q = 0; q + 1 < n; q += 2) c.cx(q, q + 1);
  }
  EngineConfig plain = cfg_with_chunk(4);
  EngineConfig fused = cfg_with_chunk(4);
  fused.fuse_single_qubit_runs = true;
  auto a = make_engine(EngineKind::kMemQSim, n, plain);
  auto b = make_engine(EngineKind::kMemQSim, n, fused);
  a->run(c);
  b->run(c);
  EXPECT_LT(a->to_dense().max_abs_diff(b->to_dense()), 1e-6);
  // Fusion must reduce kernel launches substantially (the diagonal gates in
  // each run were already cheap-local, so ~2x rather than 3x here).
  EXPECT_LT(static_cast<double>(b->telemetry().kernel_launches),
            0.7 * static_cast<double>(a->telemetry().kernel_launches));
}

}  // namespace
}  // namespace memq::core
