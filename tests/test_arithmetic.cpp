// Quantum arithmetic: Draper constant adder and compiled Shor-15 order
// finding, verified through the simulators.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "circuit/workloads.hpp"
#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

TEST(DraperAdder, AddsConstantsMod2n) {
  constexpr qubit_t n = 5;
  for (const std::uint64_t x : {0ull, 1ull, 13ull, 31ull}) {
    for (const std::uint64_t k : {0ull, 1ull, 7ull, 31ull, 100ull}) {
      sv::Simulator sim(n);
      Circuit prep(n);
      for (qubit_t q = 0; q < n; ++q)
        if (bits::test(x, q)) prep.x(q);
      sim.run(prep);
      sim.run(make_draper_constant_adder(n, k));
      const index_t expected = (x + k) & ((1u << n) - 1);
      EXPECT_GT(std::norm(sim.state().amplitude(expected)), 0.999)
          << x << " + " << k;
    }
  }
}

TEST(DraperAdder, InverseSubtracts) {
  constexpr qubit_t n = 4;
  sv::Simulator sim(n);
  Circuit prep(n);
  prep.x(0).x(2);  // |5>
  sim.run(prep);
  sim.run(make_draper_constant_adder(n, 3).inverse());
  EXPECT_GT(std::norm(sim.state().amplitude(2)), 0.999);  // 5 - 3
}

TEST(DraperAdder, SuperpositionLinearity) {
  // (|2> + |9>)/sqrt(2) + 4 -> (|6> + |13>)/sqrt(2).
  constexpr qubit_t n = 4;
  sv::Simulator sim(n);
  Circuit prep(n);
  prep.x(1);       // |2>
  prep.h(3);       // superpose bit 3: |2> + |10>... adjust
  sim.run(prep);   // (|2> + |10>)/sqrt(2)
  sim.run(make_draper_constant_adder(n, 4));
  EXPECT_NEAR(std::norm(sim.state().amplitude(6)), 0.5, 1e-9);
  EXPECT_NEAR(std::norm(sim.state().amplitude(14)), 0.5, 1e-9);
}

TEST(OrderMod15, ClassicalReference) {
  EXPECT_EQ(order_mod15(2), 4);
  EXPECT_EQ(order_mod15(4), 2);
  EXPECT_EQ(order_mod15(7), 4);
  EXPECT_EQ(order_mod15(8), 4);
  EXPECT_EQ(order_mod15(11), 2);
  EXPECT_EQ(order_mod15(13), 4);
  EXPECT_EQ(order_mod15(14), 2);
  EXPECT_THROW(order_mod15(3), Error);
  EXPECT_THROW(order_mod15(5), Error);
}

class Shor15 : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Shor15, CountingRegisterPeaksAtMultiplesOfNOverR) {
  const std::uint64_t a = GetParam();
  constexpr qubit_t n_count = 6;
  const Circuit c = make_shor15_order_finding(a, n_count);
  sv::Simulator sim(c.n_qubits());
  sim.run(c);

  const int r = order_mod15(a);
  const index_t step = (index_t{1} << n_count) / static_cast<index_t>(r);
  // Sum probability over the counting register (trace out the target).
  std::vector<double> count_prob(index_t{1} << n_count, 0.0);
  const auto probs = sim.state().probabilities();
  for (index_t i = 0; i < probs.size(); ++i)
    count_prob[i & ((index_t{1} << n_count) - 1)] += probs[i];

  double on_peaks = 0.0;
  for (index_t s = 0; s < static_cast<index_t>(r); ++s)
    on_peaks += count_prob[s * step];
  // Exact-order phases: all the mass sits exactly on multiples of 2^n/r.
  EXPECT_GT(on_peaks, 0.999) << "a=" << a;
}

INSTANTIATE_TEST_SUITE_P(Units, Shor15,
                         ::testing::Values(2ull, 4ull, 7ull, 8ull, 11ull,
                                           13ull, 14ull));

TEST(Shor15, RejectsBadMultipliers) {
  EXPECT_THROW(make_shor15_order_finding(1), Error);
  EXPECT_THROW(make_shor15_order_finding(3), Error);
  EXPECT_THROW(make_shor15_order_finding(15), Error);
}

TEST(Shor15, RunsOnMemQSimEngine) {
  const Circuit c = make_shor15_order_finding(7, 6);
  core::EngineConfig cfg;
  cfg.chunk_qubits = 5;
  cfg.codec.bound = 1e-8;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  auto dense = core::make_engine(core::EngineKind::kDense, c.n_qubits(), cfg);
  dense->run(c);
  EXPECT_LT(engine->to_dense().max_abs_diff(dense->to_dense()), 1e-5);
}

TEST(Shor15, SamplingRecoversFactors) {
  // Classical post-processing: sampled counting values s*2^n/r -> period r
  // via continued fractions (here: gcd with 2^n), then factors from
  // gcd(a^{r/2} +- 1, 15).
  constexpr std::uint64_t a = 7;
  constexpr qubit_t n_count = 6;
  const Circuit c = make_shor15_order_finding(a, n_count);
  core::EngineConfig cfg;
  cfg.chunk_qubits = 5;
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, c.n_qubits(), cfg);
  engine->run(c);
  const auto counts = engine->sample_counts(200);

  bool found = false;
  for (const auto& [basis, cnt] : counts) {
    const index_t s = basis & ((index_t{1} << n_count) - 1);
    if (s == 0) continue;
    const index_t g = std::gcd<index_t, index_t>(s, index_t{1} << n_count);
    const index_t r = (index_t{1} << n_count) / g;
    if (r % 2 != 0) continue;
    std::uint64_t half = 1;
    for (index_t i = 0; i < r / 2; ++i) half = (half * a) % 15;
    const auto f1 = std::gcd<std::uint64_t, std::uint64_t>(half + 1, 15);
    const auto f2 = std::gcd<std::uint64_t, std::uint64_t>(half - 1, 15);
    if ((f1 == 3 && f2 == 5) || (f1 == 5 && f2 == 3)) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no sample yielded the factors 3 x 5";
}

}  // namespace
}  // namespace memq::circuit
