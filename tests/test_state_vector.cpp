#include "sv/state_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::sv {
namespace {

StateVector random_state(qubit_t n, std::uint64_t seed) {
  StateVector sv(n);
  Prng rng(seed);
  for (auto& a : sv.amplitudes()) a = rng.normal_amp();
  sv.normalize();
  return sv;
}

TEST(StateVector, InitialBasisState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitude(0), (amp_t{1, 0}));
  for (index_t i = 1; i < 8; ++i) EXPECT_EQ(sv.amplitude(i), (amp_t{0, 0}));
  EXPECT_DOUBLE_EQ(sv.norm(), 1.0);
}

TEST(StateVector, NonZeroBasisState) {
  StateVector sv(3, 5);
  EXPECT_EQ(sv.amplitude(5), (amp_t{1, 0}));
  EXPECT_DOUBLE_EQ(sv.probability_one(0), 1.0);  // 5 = 0b101
  EXPECT_DOUBLE_EQ(sv.probability_one(1), 0.0);
  EXPECT_DOUBLE_EQ(sv.probability_one(2), 1.0);
}

TEST(StateVector, RejectsBadSizes) {
  EXPECT_THROW(StateVector(0), Error);
  EXPECT_THROW(StateVector(35), Error);
  EXPECT_THROW(StateVector(3, 8), Error);
}

TEST(StateVector, NormalizeAndNorm) {
  StateVector sv(4);
  Prng rng(1);
  for (auto& a : sv.amplitudes()) a = rng.normal_amp();
  EXPECT_NE(sv.norm(), 1.0);
  sv.normalize();
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, FidelityProperties) {
  const StateVector a = random_state(5, 2);
  const StateVector b = random_state(5, 3);
  EXPECT_NEAR(a.fidelity(a), 1.0, 1e-12);
  const double f = a.fidelity(b);
  EXPECT_GE(f, 0.0);
  EXPECT_LT(f, 1.0);
  EXPECT_NEAR(a.fidelity(b), b.fidelity(a), 1e-12);
}

TEST(StateVector, InnerProductConjugateSymmetry) {
  const StateVector a = random_state(4, 4);
  const StateVector b = random_state(4, 5);
  const amp_t ab = a.inner_product(b);
  const amp_t ba = b.inner_product(a);
  EXPECT_NEAR(ab.real(), ba.real(), 1e-12);
  EXPECT_NEAR(ab.imag(), -ba.imag(), 1e-12);
}

TEST(StateVector, ProbabilitiesSumToOne) {
  const StateVector sv = random_state(6, 6);
  const auto p = sv.probabilities();
  double total = 0;
  for (const double x : p) total += x;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StateVector, MaxAbsDiff) {
  StateVector a(3), b(3);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b.amplitudes()[3] = amp_t{0.25, -0.5};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
}

TEST(StateVector, SizeMismatchThrows) {
  StateVector a(3), b(4);
  EXPECT_THROW((void)a.fidelity(b), Error);
  EXPECT_THROW((void)a.max_abs_diff(b), Error);
}

}  // namespace
}  // namespace memq::sv
