#include "compress/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/prng.hpp"

namespace memq::compress {
namespace {

TEST(ByteBuffer, FixedWidthRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.f64(-1.5e-300);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_DOUBLE_EQ(r.f64(), -1.5e-300);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, LittleEndianLayout) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(ByteBuffer, VarintBoundaries) {
  ByteBuffer buf;
  ByteWriter w(buf);
  const std::uint64_t values[] = {0,        1,       127,       128,
                                  16383,    16384,   (1u << 21) - 1,
                                  1u << 28, ~0u,     ~0ull};
  for (const auto v : values) w.varint(v);
  ByteReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(ByteBuffer, VarintEncodingIsCompact) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.varint(127);
  EXPECT_EQ(buf.size(), 1u);
  w.varint(128);
  EXPECT_EQ(buf.size(), 3u);  // +2 bytes
}

TEST(ByteBuffer, SignedVarintRoundTrip) {
  ByteBuffer buf;
  ByteWriter w(buf);
  const std::int64_t values[] = {0,  -1,  1,  -64, 64,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const auto v : values) w.svarint(v);
  ByteReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.svarint(), v);
}

TEST(ByteBuffer, RandomVarintRoundTrip) {
  Prng rng(21);
  ByteBuffer buf;
  ByteWriter w(buf);
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    // Mix magnitudes so all byte lengths appear.
    const auto v = rng.next_u64() >> (rng.next_u64() % 64);
    values.push_back(v);
    w.varint(v);
  }
  ByteReader r(buf);
  for (const auto v : values) EXPECT_EQ(r.varint(), v);
}

TEST(ByteReader, TruncationThrows) {
  ByteBuffer buf;
  ByteWriter w(buf);
  w.u32(42);
  ByteReader r(buf);
  (void)r.u16();
  EXPECT_THROW((void)r.u32(), CorruptData);
}

TEST(ByteReader, MalformedVarintThrows) {
  // Eleven continuation bytes: longer than any valid 64-bit varint.
  ByteBuffer buf(11, 0xFF);
  ByteReader r(buf);
  EXPECT_THROW((void)r.varint(), CorruptData);
}

TEST(ByteReader, BytesSpanAndRemaining) {
  ByteBuffer buf{1, 2, 3, 4, 5};
  ByteReader r(buf);
  EXPECT_EQ(r.remaining(), 5u);
  const auto s = r.bytes(3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], 3);
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_THROW((void)r.bytes(3), CorruptData);
}

}  // namespace
}  // namespace memq::compress
