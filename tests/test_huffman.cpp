#include "compress/huffman.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/prng.hpp"

namespace memq::compress {
namespace {

std::vector<std::uint32_t> encode_decode(
    const std::vector<std::uint64_t>& counts,
    const std::vector<std::uint32_t>& message) {
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  ByteBuffer table;
  ByteWriter tw(table);
  code.serialize(tw);
  ByteReader tr(table);
  const HuffmanCode decoded_code = HuffmanCode::deserialize(tr);

  ByteBuffer bits;
  BitWriter bw(bits);
  for (const auto s : message) code.encode(bw, s);
  bw.flush();
  BitReader br(bits);
  std::vector<std::uint32_t> out;
  out.reserve(message.size());
  for (std::size_t i = 0; i < message.size(); ++i)
    out.push_back(decoded_code.decode(br));
  return out;
}

TEST(Huffman, TwoSymbolRoundTrip) {
  const std::vector<std::uint64_t> counts{3, 7};
  const std::vector<std::uint32_t> msg{0, 1, 1, 0, 1, 1, 1, 0};
  EXPECT_EQ(encode_decode(counts, msg), msg);
}

TEST(Huffman, SingleSymbolAlphabet) {
  const std::vector<std::uint64_t> counts{0, 42, 0};
  const std::vector<std::uint32_t> msg(100, 1);
  EXPECT_EQ(encode_decode(counts, msg), msg);
}

TEST(Huffman, SkewedDistributionCompresses) {
  // 99% symbol 0: mean code length must be close to 1 bit.
  std::vector<std::uint64_t> counts(16, 1);
  counts[0] = 10000;
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  EXPECT_EQ(code.length_of(0), 1u);
  EXPECT_LT(code.mean_code_length(counts), 1.1);
}

TEST(Huffman, UniformDistributionNearLog2) {
  std::vector<std::uint64_t> counts(256, 100);
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  EXPECT_DOUBLE_EQ(code.mean_code_length(counts), 8.0);
}

TEST(Huffman, MeanLengthWithinOneBitOfEntropy) {
  Prng rng(3);
  std::vector<std::uint64_t> counts(64);
  for (auto& c : counts) c = 1 + rng.uniform_index(10000);
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  double total = 0, entropy = 0;
  for (const auto c : counts) total += static_cast<double>(c);
  for (const auto c : counts) {
    const double p = static_cast<double>(c) / total;
    entropy -= p * std::log2(p);
  }
  const double mean = code.mean_code_length(counts);
  EXPECT_GE(mean, entropy - 1e-9);
  EXPECT_LE(mean, entropy + 1.0);
}

TEST(Huffman, LargeRandomMessageRoundTrip) {
  Prng rng(5);
  std::vector<std::uint64_t> counts(1000, 0);
  std::vector<std::uint32_t> msg;
  for (int i = 0; i < 20000; ++i) {
    // Zipf-ish skew.
    const auto s = static_cast<std::uint32_t>(
        1000.0 * rng.uniform() * rng.uniform() * rng.uniform());
    msg.push_back(std::min(s, 999u));
    ++counts[msg.back()];
  }
  EXPECT_EQ(encode_decode(counts, msg), msg);
}

TEST(Huffman, SparseAlphabetRoundTrip) {
  // Large alphabet with few used symbols — the SZQ shape (65538 symbols,
  // a handful in use).
  std::vector<std::uint64_t> counts(65538, 0);
  counts[32768] = 100000;
  counts[32769] = 500;
  counts[32767] = 480;
  counts[65536] = 3;
  counts[65537] = 7;
  std::vector<std::uint32_t> msg;
  Prng rng(8);
  for (int i = 0; i < 5000; ++i) {
    const double u = rng.uniform();
    msg.push_back(u < 0.95   ? 32768
                  : u < 0.97 ? 32769
                  : u < 0.99 ? 32767
                  : u < 0.995 ? 65536
                              : 65537);
  }
  EXPECT_EQ(encode_decode(counts, msg), msg);
}

TEST(Huffman, SerializedTableIsCompactForSparseAlphabet) {
  std::vector<std::uint64_t> counts(65538, 0);
  counts[32768] = 1000;
  counts[0] = 1;
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  ByteBuffer table;
  ByteWriter tw(table);
  code.serialize(tw);
  // Zero-run RLE keeps the table tiny despite the 65538-symbol alphabet.
  EXPECT_LT(table.size(), 64u);
}

TEST(Huffman, EncodeUnknownSymbolThrows) {
  const std::vector<std::uint64_t> counts{1, 0, 1};
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  ByteBuffer bits;
  BitWriter bw(bits);
  EXPECT_THROW(code.encode(bw, 1), Error);
  EXPECT_THROW(code.encode(bw, 99), Error);
}

TEST(Huffman, AllZeroCountsThrows) {
  const std::vector<std::uint64_t> counts(8, 0);
  EXPECT_THROW(HuffmanCode::from_counts(counts), Error);
}

TEST(Huffman, CorruptTableDetected) {
  // A table whose lengths violate the Kraft inequality must be rejected.
  ByteBuffer bad;
  ByteWriter w(bad);
  w.varint(4);   // alphabet size
  w.u8(1);       // all four symbols claim a 1-bit code
  w.varint(4);
  ByteReader r(bad);
  EXPECT_THROW(HuffmanCode::deserialize(r), Error);
}

TEST(Huffman, TruncatedBitstreamThrows) {
  std::vector<std::uint64_t> counts(4, 10);
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  ByteBuffer bits;
  BitWriter bw(bits);
  for (int i = 0; i < 9; ++i) code.encode(bw, 3);
  bw.flush();
  BitReader br(bits);
  for (int i = 0; i < 9; ++i) (void)code.decode(br);
  // The remaining padding bits cannot contain 4 more valid codes.
  EXPECT_THROW(
      {
        for (int i = 0; i < 4; ++i) (void)code.decode(br);
      },
      CorruptData);
}

}  // namespace
}  // namespace memq::compress
