// Marginal-probability queries across engines and layouts.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig cfg3() {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  return cfg;
}

TEST(Marginals, GhzEndsAgree) {
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kWu,
                                EngineKind::kMemQSim}) {
    auto engine = make_engine(kind, 7, cfg3());
    engine->run(circuit::make_ghz(7));
    // Any 2-qubit marginal of GHZ is 1/2 |00> + 1/2 |11>.
    const auto m = engine->marginal_probabilities({1, 5});
    ASSERT_EQ(m.size(), 4u);
    EXPECT_NEAR(m[0], 0.5, 1e-6) << engine_kind_name(kind);
    EXPECT_NEAR(m[3], 0.5, 1e-6);
    EXPECT_NEAR(m[1], 0.0, 1e-9);
    EXPECT_NEAR(m[2], 0.0, 1e-9);
  }
}

TEST(Marginals, OrderOfQubitsDefinesBitOrder) {
  auto engine = make_engine(EngineKind::kMemQSim, 4, cfg3());
  Circuit c(4);
  c.x(2);  // |0100>
  engine->run(c);
  // qubits {2, 0}: bit0 reads qubit 2 (=1), bit1 reads qubit 0 (=0) -> 0b01.
  const auto m = engine->marginal_probabilities({2, 0});
  EXPECT_NEAR(m[0b01], 1.0, 1e-9);
  // Reversed request flips the key.
  const auto r = engine->marginal_probabilities({0, 2});
  EXPECT_NEAR(r[0b10], 1.0, 1e-9);
}

TEST(Marginals, SumsToOneOnRandomStates) {
  auto engine = make_engine(EngineKind::kMemQSim, 8, cfg3());
  engine->run(circuit::make_random_circuit(8, 6, 5));
  const auto m = engine->marginal_probabilities({0, 3, 6, 7});
  double total = 0.0;
  for (const double p : m) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Marginals, MatchesDenseOracle) {
  const Circuit c = circuit::make_random_circuit(8, 6, 11);
  auto memq = make_engine(EngineKind::kMemQSim, 8, cfg3());
  auto dense = make_engine(EngineKind::kDense, 8, cfg3());
  memq->run(c);
  dense->run(c);
  for (const std::vector<qubit_t> qs :
       {std::vector<qubit_t>{0}, {7}, {2, 5}, {0, 4, 7}, {6, 1, 3, 0}}) {
    const auto a = memq->marginal_probabilities(qs);
    const auto b = dense->marginal_probabilities(qs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_NEAR(a[i], b[i], 1e-6) << "subset size " << qs.size();
  }
}

TEST(Marginals, LayoutTransparent) {
  const Circuit bv = circuit::make_bernstein_vazirani(7, 0x4D);
  EngineConfig opt = cfg3();
  opt.optimize_layout = true;
  auto engine = make_engine(EngineKind::kMemQSim, bv.n_qubits(), opt);
  engine->run(bv);
  // Data-register marginal must read the secret deterministically.
  const auto m = engine->marginal_probabilities({0, 1, 2, 3, 4, 5, 6});
  EXPECT_NEAR(m[0x4D], 1.0, 1e-6);
}

TEST(Marginals, RejectsBadRequests) {
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  engine->run(circuit::make_ghz(5));
  EXPECT_THROW((void)engine->marginal_probabilities({}), Error);
  EXPECT_THROW((void)engine->marginal_probabilities({9}), Error);
  std::vector<qubit_t> too_many(21, 0);
  EXPECT_THROW((void)engine->marginal_probabilities(too_many), Error);
}

}  // namespace
}  // namespace memq::core
