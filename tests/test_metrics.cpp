// Unit tests for the process-wide metrics plane (common/metrics.hpp):
// histogram bucket math and percentile bounds, counter/gauge cell
// semantics, registry snapshot aggregation and deltas, the disarmed
// zero-cost path, and sampler start/stop races (the TSan job runs these).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.hpp"

namespace metrics = memq::metrics;

TEST(Histogram, BucketOfPowersOfTwo) {
  EXPECT_EQ(metrics::Histogram::bucket_of(0), 0u);
  EXPECT_EQ(metrics::Histogram::bucket_of(1), 0u);
  EXPECT_EQ(metrics::Histogram::bucket_of(2), 1u);
  EXPECT_EQ(metrics::Histogram::bucket_of(3), 1u);
  EXPECT_EQ(metrics::Histogram::bucket_of(4), 2u);
  EXPECT_EQ(metrics::Histogram::bucket_of(7), 2u);
  EXPECT_EQ(metrics::Histogram::bucket_of(8), 3u);
  EXPECT_EQ(metrics::Histogram::bucket_of(1024), 10u);
  EXPECT_EQ(metrics::Histogram::bucket_of(~std::uint64_t{0}), 63u);
}

TEST(Histogram, BucketUpperIsInclusiveEdge) {
  // Every value must satisfy v <= bucket_upper(bucket_of(v)).
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 5ull, 1023ull, 1024ull,
                          (1ull << 40) + 17ull, ~0ull}) {
    const std::size_t b = metrics::Histogram::bucket_of(v);
    EXPECT_LE(v, metrics::Histogram::bucket_upper(b)) << "v=" << v;
    if (b > 0) {
      EXPECT_GT(v, metrics::Histogram::bucket_upper(b - 1)) << "v=" << v;
    }
  }
  EXPECT_EQ(metrics::Histogram::bucket_upper(0), 1u);
  EXPECT_EQ(metrics::Histogram::bucket_upper(63), ~std::uint64_t{0});
}

TEST(Histogram, PercentileUpperBoundsAndMaxClamp) {
  metrics::Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  const metrics::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 100u);
  EXPECT_EQ(s.sum, 5050u);
  EXPECT_EQ(s.max, 100u);
  // Percentiles are bucket upper edges: p50 of 1..100 lands in [32,63],
  // reported as 63; p99 and p100 land in [64,127] but clamp to max=100.
  EXPECT_GE(s.percentile(0.50), 50u);
  EXPECT_LE(s.percentile(0.50), 63u);
  EXPECT_EQ(s.percentile(0.99), 100u);
  EXPECT_EQ(s.percentile(1.0), 100u);
  EXPECT_LE(s.percentile(0.0), s.percentile(1.0));
  // Ordering holds for any sample shape.
  EXPECT_LE(s.percentile(0.50), s.percentile(0.95));
  EXPECT_LE(s.percentile(0.95), s.percentile(0.99));
  EXPECT_LE(s.percentile(0.99), s.max);
}

TEST(Histogram, EmptyPercentileIsZero) {
  metrics::Histogram h;
  EXPECT_EQ(h.snapshot().percentile(0.5), 0u);
}

TEST(Histogram, MinusIsExactForCountsAndBuckets) {
  metrics::Histogram h;
  h.record(3);
  h.record(1000);
  const metrics::HistogramSnapshot early = h.snapshot();
  h.record(3);
  h.record(70);
  const metrics::HistogramSnapshot d = h.snapshot().minus(early);
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, 73u);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : d.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, d.count);
  EXPECT_EQ(d.buckets[metrics::Histogram::bucket_of(3)], 1u);
  EXPECT_EQ(d.buckets[metrics::Histogram::bucket_of(70)], 1u);
}

TEST(Gauge, AddSubPeakSemantics) {
  metrics::Gauge& g = metrics::Registry::global().gauge("test.gauge_peak");
  g.add(100);
  g.add(50);
  EXPECT_EQ(g.value(), 150u);
  EXPECT_EQ(g.peak(), 150u);
  g.sub(120);
  EXPECT_EQ(g.value(), 30u);
  EXPECT_EQ(g.peak(), 150u);  // peak survives the drop
  g.set(0);
  EXPECT_EQ(g.value(), 0u);
  EXPECT_EQ(g.peak(), 150u);  // set(0) models a resize: history kept
  g.add(40);
  g.reset_peak();
  EXPECT_EQ(g.peak(), 40u);  // reset_peak: peak := current
}

TEST(Registry, CellsAggregateByName) {
  metrics::Registry& reg = metrics::Registry::global();
  metrics::Counter& a = reg.counter("test.agg_counter");
  metrics::Counter& b = reg.counter("test.agg_counter");
  EXPECT_NE(&a, &b);  // per-instance cells
  a.add(7);
  b.add(5);
  const metrics::Snapshot s = reg.snapshot();
  EXPECT_EQ(s.counter("test.agg_counter"), 12u);
  EXPECT_EQ(s.counter("test.no_such_counter"), 0u);
}

TEST(Registry, SnapshotDeltasTelescope) {
  metrics::Counter& c = metrics::Registry::global().counter("test.telescope");
  const metrics::Snapshot s0 = metrics::Registry::global().snapshot();
  c.add(3);
  const metrics::Snapshot s1 = metrics::Registry::global().snapshot();
  c.add(9);
  const metrics::Snapshot s2 = metrics::Registry::global().snapshot();
  const std::uint64_t d01 = s1.counter_delta(s0, "test.telescope");
  const std::uint64_t d12 = s2.counter_delta(s1, "test.telescope");
  EXPECT_EQ(d01, 3u);
  EXPECT_EQ(d12, 9u);
  EXPECT_EQ(d01 + d12, s2.counter_delta(s0, "test.telescope"));
}

TEST(Timing, DisarmedScopedTimerRecordsNothing) {
  metrics::disarm_timing();
  metrics::Histogram h;
  { metrics::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 0u);
  metrics::arm_timing();
  { metrics::ScopedTimer t(h); }
  EXPECT_EQ(h.snapshot().count, 1u);
  metrics::disarm_timing();
}

TEST(Timing, ArmStateAtConstructionWins) {
  // A timer constructed while disarmed stays inert even if arming happens
  // before its destructor — no clock read may occur on the disarmed path.
  metrics::disarm_timing();
  metrics::Histogram h;
  {
    metrics::ScopedTimer t(h);
    metrics::arm_timing();
  }
  EXPECT_EQ(h.snapshot().count, 0u);
  metrics::disarm_timing();
}

TEST(Histogram, ConcurrentRecordsAreLossless) {
  metrics::Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w)
    workers.emplace_back([&h] {
      for (int i = 1; i <= kPerThread; ++i)
        h.record(static_cast<std::uint64_t>(i));
    });
  for (std::thread& t : workers) t.join();
  const metrics::HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.max, static_cast<std::uint64_t>(kPerThread));
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : s.buckets) bucket_sum += b;
  EXPECT_EQ(bucket_sum, s.count);
}

TEST(Sampler, StartStopProducesValidJsonl) {
  const std::string path = "test_metrics_sampler.jsonl";
  metrics::Counter& c = metrics::Registry::global().counter("test.sampled");
  metrics::Sampler sampler;
  metrics::SamplerOptions opts;
  opts.interval = std::chrono::milliseconds(5);
  opts.jsonl_path = path;
  sampler.start(opts);
  for (int i = 0; i < 50; ++i) {
    c.add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.stop();
  EXPECT_FALSE(sampler.running());

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::size_t ticks = 0;
  std::uint64_t last = 0;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    ++ticks;
    // Crude monotonicity probe without a JSON parser: the sampled counter
    // must never decrease across ticks (check_metrics.py does the rest).
    const std::string key = "\"test.sampled\": ";
    const std::size_t at = line.find(key);
    ASSERT_NE(at, std::string::npos) << line;
    const std::uint64_t v = std::stoull(line.substr(at + key.size()));
    EXPECT_GE(v, last);
    last = v;
  }
  EXPECT_GE(ticks, 2u);  // at least one periodic tick plus the final one
  EXPECT_EQ(last, 50u);  // final sample sees every add
  std::remove(path.c_str());
}

TEST(Sampler, StopWithoutStartIsNoop) {
  metrics::Sampler sampler;
  sampler.stop();
  EXPECT_FALSE(sampler.running());
}

TEST(Sampler, RestartAfterStop) {
  metrics::Sampler sampler;
  for (int round = 0; round < 3; ++round) {
    metrics::SamplerOptions opts;
    opts.interval = std::chrono::milliseconds(2);
    sampler.start(opts);
    EXPECT_TRUE(sampler.running());
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    sampler.stop();
    EXPECT_FALSE(sampler.running());
  }
}

TEST(Prometheus, ExpositionShapes) {
  metrics::Registry& reg = metrics::Registry::global();
  reg.counter("test.prom_counter").add(4);
  reg.gauge("test.prom_gauge").add(9);
  reg.histogram("test.prom_hist").record(5);
  std::ostringstream os;
  metrics::write_prometheus(os, reg.snapshot());
  const std::string text = os.str();
  EXPECT_NE(text.find("# TYPE memq_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_counter 4"), std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_gauge 9"), std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_gauge_peak 9"), std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_hist_count 1"), std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_hist_bucket{le=\"7\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("memq_test_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}
