#include "device/copy_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"

namespace memq::device {
namespace {

DeviceConfig small_config() {
  DeviceConfig cfg;
  cfg.memory_bytes = 1 << 20;  // 1 MiB
  return cfg;
}

TEST(SimDevice, AllocationAccounting) {
  SimDevice dev(small_config());
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  {
    auto a = dev.alloc(1000, "a");
    auto b = dev.alloc(2000, "b");
    EXPECT_EQ(dev.bytes_in_use(), 3000u);
    EXPECT_EQ(dev.stats().allocations, 2u);
    EXPECT_EQ(dev.stats().peak_bytes, 3000u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.stats().peak_bytes, 3000u);  // peak persists
}

TEST(SimDevice, OutOfMemoryThrows) {
  SimDevice dev(small_config());
  auto a = dev.alloc(1 << 19);
  EXPECT_THROW((void)dev.alloc(1 << 19 | 1), OutOfMemory);
  auto b = dev.alloc(1 << 19);  // exactly fits
  EXPECT_THROW((void)dev.alloc(1), OutOfMemory);
}

TEST(SimDevice, UseAfterFreeDetected) {
  SimDevice dev(small_config());
  auto buf = dev.alloc(64);
  buf.free();
  EXPECT_THROW((void)buf.view<double>(), DeviceError);
}

TEST(SimDevice, MoveTransfersOwnership) {
  SimDevice dev(small_config());
  auto a = dev.alloc(128);
  auto b = std::move(a);
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dev.bytes_in_use(), 128u);
}

TEST(Stream, SyncCopyAdvancesHostAndTail) {
  DeviceConfig cfg = small_config();
  cfg.h2d_bandwidth = 1e9;
  cfg.sync_copy_overhead = 1e-6;
  SimDevice dev(cfg);
  Stream s(dev, "test");
  auto buf = dev.alloc(1000);
  std::vector<std::uint8_t> host(1000, 42);
  s.memcpy_h2d_sync(buf, 0, host.data(), 1000);
  // Cost = overhead (host) + bytes/bw: tail == host == 1e-6 + 1e-6.
  EXPECT_NEAR(s.tail(), 2e-6, 1e-12);
  EXPECT_NEAR(dev.host_time(), 2e-6, 1e-12);
  EXPECT_EQ(buf.view<std::uint8_t>()[999], 42);
  EXPECT_EQ(dev.stats().h2d_calls, 1u);
  EXPECT_EQ(dev.stats().h2d_bytes, 1000u);
}

TEST(Stream, AsyncCopyDoesNotBlockHost) {
  DeviceConfig cfg = small_config();
  cfg.h2d_bandwidth = 1e6;  // slow: 1 ms per KB
  cfg.async_copy_overhead_h2d = 1e-6;
  SimDevice dev(cfg);
  Stream s(dev, "test");
  auto buf = dev.alloc(1000);
  std::vector<std::uint8_t> host(1000);
  s.memcpy_h2d_async(buf, 0, host.data(), 1000);
  // Host only paid the call overhead; the stream carries the transfer time.
  EXPECT_NEAR(dev.host_time(), 1e-6, 1e-12);
  EXPECT_NEAR(s.tail(), 1e-6 + 1e-3, 1e-9);
  s.synchronize();
  EXPECT_NEAR(dev.host_time(), s.tail(), 1e-12);
}

TEST(Stream, KernelChargesLaunchPlusWork) {
  DeviceConfig cfg = small_config();
  cfg.kernel_launch_overhead = 2e-6;
  cfg.gate_kernel_throughput = 1e9;
  SimDevice dev(cfg);
  Stream s(dev, "compute");
  bool ran = false;
  s.launch("k", 1000000, [&] { ran = true; });
  EXPECT_TRUE(ran);
  EXPECT_NEAR(s.tail(), 2e-6 + 1e-3, 1e-9);
  EXPECT_EQ(dev.stats().kernel_launches, 1u);
}

TEST(Stream, EventsOrderAcrossStreams) {
  DeviceConfig cfg = small_config();
  cfg.kernel_launch_overhead = 0.0;
  cfg.gate_kernel_throughput = 1e6;
  SimDevice dev(cfg);
  Stream a(dev, "a"), b(dev, "b");
  a.launch("slow", 1000, [] {});  // 1 ms on stream a
  const Event e = a.record();
  b.wait(e);
  b.launch("fast", 1, [] {});
  EXPECT_GE(b.tail(), a.tail());
}

TEST(Stream, CopyOverrunThrows) {
  SimDevice dev(small_config());
  Stream s(dev, "test");
  auto buf = dev.alloc(16);
  std::vector<std::uint8_t> host(32);
  EXPECT_THROW(s.memcpy_h2d_sync(buf, 0, host.data(), 32), DeviceError);
  EXPECT_THROW(s.memcpy_h2d_sync(buf, 8, host.data(), 9), DeviceError);
  EXPECT_THROW(s.memcpy_d2h_sync(host.data(), buf, 15, 2), DeviceError);
}

class CopyStrategies : public ::testing::TestWithParam<TransferStrategy> {};

TEST_P(CopyStrategies, RoundTripPreservesData) {
  SimDevice dev(small_config());
  Stream s(dev, "xfer");
  CopyEngine engine(dev, GetParam());
  constexpr std::size_t n = 1024;
  auto buf = dev.alloc(n * sizeof(amp_t));
  auto staging = dev.alloc(n * sizeof(amp_t));

  Prng rng(3);
  std::vector<amp_t> src(n);
  for (auto& a : src) a = rng.normal_amp();
  engine.upload(s, buf, src, {}, &staging);
  std::vector<amp_t> back(n);
  engine.download(s, back, buf, {}, &staging);
  s.synchronize();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(back[i], src[i]);
}

TEST_P(CopyStrategies, ScatterPositionsRespected) {
  if (GetParam() == TransferStrategy::kSync) GTEST_SKIP();
  SimDevice dev(small_config());
  Stream s(dev, "xfer");
  CopyEngine engine(dev, GetParam());
  constexpr std::size_t n = 256;
  auto buf = dev.alloc(2 * n * sizeof(amp_t));
  auto staging = dev.alloc(n * sizeof(amp_t));

  std::vector<amp_t> src(n);
  std::vector<index_t> positions(n);
  for (std::size_t i = 0; i < n; ++i) {
    src[i] = amp_t{static_cast<double>(i), 0};
    positions[i] = 2 * i;  // strided placement
  }
  engine.upload(s, buf, src, positions, &staging);
  std::vector<amp_t> back(n);
  engine.download(s, back, buf, positions, &staging);
  s.synchronize();
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(back[i], src[i]);
  EXPECT_EQ(buf.view<amp_t>()[4], (amp_t{2.0, 0}));
}

INSTANTIATE_TEST_SUITE_P(All, CopyStrategies,
                         ::testing::Values(TransferStrategy::kSync,
                                           TransferStrategy::kAsyncPerElement,
                                           TransferStrategy::kStagedBuffer),
                         [](const auto& info) {
                           std::string n = strategy_name(info.param);
                           for (auto& ch : n)
                             if (ch == '-') ch = '_';
                           return n;
                         });

// Each strategy gets its own SimDevice: the strategies share a host clock
// within a device, so timing deltas are only comparable across fresh devices
// (the Table-1 bench does the same).
double upload_seconds(TransferStrategy strategy, std::size_t n,
                      std::uint64_t* api_calls = nullptr) {
  SimDevice dev(small_config());
  Stream s(dev, "xfer");
  CopyEngine engine(dev, strategy);
  auto buf = dev.alloc(n * sizeof(amp_t));
  auto staging = dev.alloc(n * sizeof(amp_t));
  std::vector<amp_t> src(n);
  const auto rep = engine.upload(s, buf, src, {}, &staging);
  if (api_calls != nullptr) *api_calls = rep.api_calls;
  return rep.modeled_seconds;
}

TEST(CopyEngine, AsyncPerElementIsVastlySlowerThanSync) {
  // The Table-1 phenomenon: per-element copies pay per-call overhead 2^n
  // times; one bulk copy pays it once.
  constexpr std::size_t n = 4096;
  std::uint64_t sync_calls = 0, async_calls = 0;
  const double sync_s = upload_seconds(TransferStrategy::kSync, n, &sync_calls);
  const double async_s =
      upload_seconds(TransferStrategy::kAsyncPerElement, n, &async_calls);
  EXPECT_EQ(sync_calls, 1u);
  EXPECT_EQ(async_calls, n);
  EXPECT_GT(async_s / sync_s, 100.0);
}

TEST(CopyEngine, StagedIsCloseToSync) {
  constexpr std::size_t n = 16384;
  const double sync_s = upload_seconds(TransferStrategy::kSync, n);
  const double staged_s = upload_seconds(TransferStrategy::kStagedBuffer, n);
  const double ratio = staged_s / sync_s;
  EXPECT_GT(ratio, 0.95);
  EXPECT_LT(ratio, 1.2);
}

TEST(CopyEngine, SyncRejectsScatter) {
  SimDevice dev(small_config());
  Stream s(dev, "sync");
  CopyEngine engine(dev, TransferStrategy::kSync);
  auto buf = dev.alloc(64 * sizeof(amp_t));
  std::vector<amp_t> src(64);
  std::vector<index_t> positions(64, 0);
  for (std::size_t i = 0; i < 64; ++i) positions[i] = i;
  EXPECT_THROW(engine.upload(s, buf, src, positions), Error);
}

TEST(CopyEngine, StagedRequiresStagingBuffer) {
  SimDevice dev(small_config());
  Stream s(dev, "staged");
  CopyEngine engine(dev, TransferStrategy::kStagedBuffer);
  auto buf = dev.alloc(64 * sizeof(amp_t));
  std::vector<amp_t> src(64);
  EXPECT_THROW(engine.upload(s, buf, src), Error);
}

TEST(CopyEngine, PositionOutOfRangeThrows) {
  SimDevice dev(small_config());
  Stream s(dev, "xfer");
  CopyEngine engine(dev, TransferStrategy::kAsyncPerElement);
  auto buf = dev.alloc(8 * sizeof(amp_t));
  std::vector<amp_t> src(8);
  std::vector<index_t> positions(8, 99);
  EXPECT_THROW(engine.upload(s, buf, src, positions), Error);
}

}  // namespace
}  // namespace memq::device
