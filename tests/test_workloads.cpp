// Workload builders verified through the dense simulator: each circuit must
// produce its textbook state / distribution.
#include "circuit/workloads.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bit_ops.hpp"
#include "common/error.hpp"
#include "sv/simulator.hpp"

namespace memq::circuit {
namespace {

using sv::Simulator;

TEST(Workloads, GhzState) {
  constexpr qubit_t n = 6;
  Simulator sim(n);
  sim.run(make_ghz(n));
  const auto p = sim.state().probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[dim_of(n) - 1], 0.5, 1e-12);
}

TEST(Workloads, QftMapsBasisToFourierPhases) {
  constexpr qubit_t n = 4;
  constexpr index_t k = 5;
  Simulator sim(n);
  Circuit prep(n);
  for (qubit_t q = 0; q < n; ++q)
    if (bits::test(k, q)) prep.x(q);
  sim.run(prep);
  sim.run(make_qft(n));
  // QFT|k> = 2^{-n/2} sum_j e^{2 pi i k j / 2^n} |j>.
  const double scale = 1.0 / std::sqrt(static_cast<double>(dim_of(n)));
  for (index_t j = 0; j < dim_of(n); ++j) {
    const double angle = 2.0 * kPi * static_cast<double>(k * j) /
                         static_cast<double>(dim_of(n));
    const amp_t expected{scale * std::cos(angle), scale * std::sin(angle)};
    EXPECT_LT(std::abs(sim.state().amplitude(j) - expected), 1e-10)
        << "j=" << j;
  }
}

TEST(Workloads, BernsteinVaziraniRecoversSecret) {
  constexpr qubit_t n = 8;
  for (const std::uint64_t secret : {0x5Bull, 0x00ull, 0xFFull, 0x91ull}) {
    Simulator sim(n + 1);
    sim.run(make_bernstein_vazirani(n, secret));
    // Data register must be exactly |secret> (ancilla in |->).
    for (qubit_t q = 0; q < n; ++q)
      EXPECT_NEAR(sim.state().probability_one(q),
                  bits::test(secret, q) ? 1.0 : 0.0, 1e-10)
          << "secret=" << secret << " qubit=" << q;
  }
}

TEST(Workloads, GroverAmplifiesMarkedState) {
  constexpr qubit_t n = 6;
  constexpr std::uint64_t marked = 0b101101;
  Simulator sim(n);
  sim.run(make_grover(n, marked));
  const auto p = sim.state().probabilities();
  // Optimal iterations reach > 0.98 success probability at n = 6.
  EXPECT_GT(p[marked], 0.9);
  for (index_t i = 0; i < dim_of(n); ++i)
    if (i != marked) EXPECT_LT(p[i], 0.01);
}

TEST(Workloads, GroverTwoQubitsIsExact) {
  // n = 2 is the textbook case where one iteration reaches probability 1.
  for (std::uint64_t marked = 0; marked < 4; ++marked) {
    Simulator sim(2);
    sim.run(make_grover(2, marked, 1));
    EXPECT_NEAR(sim.state().probabilities()[marked], 1.0, 1e-10)
        << "marked=" << marked;
  }
}

TEST(Workloads, GroverSingleQubitStaysAtHalf) {
  // Grover gains nothing on 1 qubit: sin^2(3 pi / 4) = 1/2.
  Simulator sim(1);
  sim.run(make_grover(1, 1, 1));
  EXPECT_NEAR(sim.state().probabilities()[1], 0.5, 1e-10);
}

TEST(Workloads, WStateIsUniformOneHot) {
  constexpr qubit_t n = 5;
  Simulator sim(n);
  sim.run(make_w_state(n));
  const auto p = sim.state().probabilities();
  for (index_t i = 0; i < dim_of(n); ++i) {
    if (bits::popcount(i) == 1)
      EXPECT_NEAR(p[i], 1.0 / n, 1e-10) << "i=" << i;
    else
      EXPECT_NEAR(p[i], 0.0, 1e-12) << "i=" << i;
  }
}

TEST(Workloads, PhaseEstimationFindsExactPhase) {
  // phase = 5/32 is exactly representable with 5 counting qubits.
  constexpr qubit_t counting = 5;
  Simulator sim(counting + 1);
  sim.run(make_phase_estimation(counting, 5.0 / 32.0));
  const auto p = sim.state().probabilities();
  // Counting register (low qubits) should read 5; eigenstate qubit is |1>.
  const index_t expected = 5 | (index_t{1} << counting);
  EXPECT_GT(p[expected], 0.99);
}

TEST(Workloads, AdderAddsBasisStates) {
  constexpr qubit_t bits = 4;
  for (const auto& [a, b] : std::vector<std::pair<index_t, index_t>>{
           {3, 5}, {0, 0}, {15, 1}, {9, 9}, {15, 15}}) {
    const Circuit adder = make_adder(bits);
    Simulator sim(adder.n_qubits());
    Circuit prep(adder.n_qubits());
    for (qubit_t q = 0; q < bits; ++q)
      if (bits::test(a, q)) prep.x(q);
    for (qubit_t q = 0; q < bits; ++q)
      if (bits::test(b, q)) prep.x(bits + q);
    sim.run(prep);
    sim.run(adder);
    // Result: a unchanged, b holds low bits of a+b, carry-out holds bit 4.
    const index_t sum = a + b;
    for (qubit_t q = 0; q < bits; ++q) {
      EXPECT_NEAR(sim.state().probability_one(q), bits::test(a, q) ? 1 : 0,
                  1e-9)
          << "a bit " << q;
      EXPECT_NEAR(sim.state().probability_one(bits + q),
                  bits::test(sum, q) ? 1 : 0, 1e-9)
          << "sum bit " << q;
    }
    EXPECT_NEAR(sim.state().probability_one(2 * bits + 1),
                bits::test(sum, bits) ? 1 : 0, 1e-9)
        << "carry out for " << a << "+" << b;
  }
}

TEST(Workloads, TeleportDeliversState) {
  const double theta = 1.1, phi = 0.4, lambda = 2.2;
  Simulator sim(3);
  sim.run(make_teleport(theta, phi, lambda));
  // Qubit 2 should hold u3(theta,phi,lambda)|0> regardless of qubits 0,1.
  Simulator ref(1);
  Circuit prep(1);
  prep.u3(0, theta, phi, lambda);
  ref.run(prep);
  const double expected_p1 = ref.state().probability_one(0);
  EXPECT_NEAR(sim.state().probability_one(2), expected_p1, 1e-10);
}

TEST(Workloads, QaoaPreservesNormAndEntangles) {
  // p = 1 MaxCut on the n-cycle: the optimal angles reach 3/4 of the edges
  // (|expected cut - 0.75 n| small); the sign of beta depends on the mixer
  // convention, so take the better of +-beta.
  constexpr qubit_t n = 6;
  // Per edge at p=1 on the cycle: <C> = 1/2 + (1/4) sin(4 beta) sin(gamma)
  // cos(gamma); gamma = pi/4, |beta| = pi/8 attains the 3/4 ring optimum.
  double best_cut = 0.0;
  for (const double beta : {kPi / 8, -kPi / 8}) {
    QaoaParams params;
    for (qubit_t q = 0; q < n; ++q) params.edges.emplace_back(q, (q + 1) % n);
    params.gammas = {kPi / 4};
    params.betas = {beta};
    Simulator sim(n);
    sim.run(make_qaoa_maxcut(n, params));
    EXPECT_NEAR(sim.state().norm(), 1.0, 1e-10);
    double cut = 0;
    for (const auto& [a, b] : params.edges) {
      std::string ops(n, 'I');
      ops[a] = 'Z';
      ops[b] = 'Z';
      cut += 0.5 * (1.0 - sim.expectation({ops}));
    }
    best_cut = std::max(best_cut, cut);
  }
  EXPECT_NEAR(best_cut, 0.75 * n, 1e-9);  // p=1 ring optimum
}

TEST(Workloads, RandomCircuitDeterministicInSeed) {
  const Circuit a = make_random_circuit(5, 6, 123);
  const Circuit b = make_random_circuit(5, 6, 123);
  const Circuit c = make_random_circuit(5, 6, 124);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  bool any_diff = c.size() != a.size();
  for (std::size_t i = 0; !any_diff && i < std::min(a.size(), c.size()); ++i)
    any_diff = !(a[i] == c[i]);
  EXPECT_TRUE(any_diff);
}

TEST(Workloads, RandomCircuitSpreadsAmplitude) {
  Simulator sim(6);
  sim.run(make_random_circuit(6, 12, 7));
  const auto p = sim.state().probabilities();
  double max_p = 0;
  for (const double x : p) max_p = std::max(max_p, x);
  EXPECT_LT(max_p, 0.5);  // no basis state dominates after 12 layers
  EXPECT_NEAR(sim.state().norm(), 1.0, 1e-10);
}

TEST(Workloads, RegistryBuildsEveryName) {
  for (const auto& name : workload_names()) {
    const Circuit c = make_workload(name, 6, 42);
    EXPECT_GE(c.n_qubits(), 6u) << name;
    EXPECT_FALSE(c.empty()) << name;
    Simulator sim(c.n_qubits());
    sim.run(c);
    EXPECT_NEAR(sim.state().norm(), 1.0, 1e-9) << name;
  }
}

TEST(Workloads, RegistryRejectsUnknown) {
  EXPECT_THROW(make_workload("bogus", 4, 0), InvalidArgument);
}

}  // namespace
}  // namespace memq::circuit
