// Adversarial / corner-case compressor tests beyond the round-trip sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/prng.hpp"
#include "compress/compressor.hpp"
#include "compress/huffman.hpp"

namespace memq::compress {
namespace {

TEST(HuffmanExtra, FlatMaximumAlphabet) {
  // 65538 equiprobable symbols: depth 17 codes, still round-trips.
  std::vector<std::uint64_t> counts(65538, 7);
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  ByteBuffer bits;
  BitWriter bw(bits);
  for (std::uint32_t s = 0; s < 65538; s += 997) code.encode(bw, s);
  bw.flush();
  BitReader br(bits);
  for (std::uint32_t s = 0; s < 65538; s += 997)
    EXPECT_EQ(code.decode(br), s);
}

TEST(HuffmanExtra, PathologicalFibonacciCountsGetRescaled) {
  // Fibonacci-like counts create maximal code depth; the builder must
  // rescale until every code fits kMaxCodeLen.
  std::vector<std::uint64_t> counts;
  std::uint64_t a = 1, b = 1;
  for (int i = 0; i < 80; ++i) {
    counts.push_back(a);
    const std::uint64_t next = a + b;
    a = b;
    b = next;
  }
  const HuffmanCode code = HuffmanCode::from_counts(counts);
  for (std::uint32_t s = 0; s < counts.size(); ++s)
    EXPECT_LE(code.length_of(s), HuffmanCode::kMaxCodeLen);
}

TEST(CompressorExtra, DeterministicOutput) {
  Prng rng(9);
  std::vector<double> data(4096);
  for (auto& x : data) x = rng.normal() * 1e-2;
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    ByteBuffer a, b;
    codec->compress(data, 1e-5, a);
    codec->compress(data, 1e-5, b);
    EXPECT_EQ(a, b) << name << " output is not deterministic";
  }
}

TEST(LzhExtra, LongRunsCollapse) {
  const auto codec = make_compressor("lzh");
  std::vector<double> data(8192, 1.0 / 3.0);
  ByteBuffer out;
  codec->compress(data, 0.0, out);
  EXPECT_LT(out.size(), data.size() * 8 / 50);  // >50x on a constant run
  std::vector<double> back(data.size());
  codec->decompress(out, back);
  EXPECT_EQ(back, data);
}

TEST(LzhExtra, MatchAcrossWindowBoundary) {
  // A repeat whose source sits just inside / just outside the 32 KiB
  // window: both must round-trip (the far one simply encodes as literals).
  const auto codec = make_compressor("lzh");
  Prng rng(5);
  std::vector<double> data(10000);  // 80 KB of bytes
  for (std::size_t i = 0; i < 1000; ++i) data[i] = rng.normal();
  for (std::size_t i = 1000; i < data.size(); ++i)
    data[i] = data[i % 911];  // periodic: matches at various distances
  ByteBuffer out;
  codec->compress(data, 0.0, out);
  std::vector<double> back(data.size());
  codec->decompress(out, back);
  EXPECT_EQ(back, data);
  EXPECT_LT(out.size(), data.size() * 8 / 4);
}

TEST(LzhExtra, OverlappingMatches) {
  // Runs like "abcabcabc..." use matches whose source overlaps their
  // destination (distance < length) — the classic LZ77 corner.
  const auto codec = make_compressor("lzh");
  std::vector<double> data(4096);
  data[0] = 1.25;
  data[1] = -2.5;
  data[2] = 3.75;
  for (std::size_t i = 3; i < data.size(); ++i) data[i] = data[i - 3];
  ByteBuffer out;
  codec->compress(data, 0.0, out);
  std::vector<double> back(data.size());
  codec->decompress(out, back);
  EXPECT_EQ(back, data);
}

TEST(BpcExtra, TailBlockSmallerThan64) {
  const auto codec = make_compressor("bpc");
  for (const std::size_t n : {65ul, 100ul, 127ul, 129ul}) {
    Prng rng(n);
    std::vector<double> data(n);
    for (auto& x : data) x = rng.normal();
    ByteBuffer out;
    codec->compress(data, 1e-6, out);
    std::vector<double> back(n);
    codec->decompress(out, back);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_LE(std::fabs(back[i] - data[i]), 1e-6) << n << ":" << i;
  }
}

TEST(BpcExtra, MixedMagnitudeBlocks) {
  // A block mixing 1e+6 and 1e-12 values: tiny values round to zero (still
  // within the absolute bound), huge ones stay accurate.
  const auto codec = make_compressor("bpc");
  std::vector<double> data(64);
  for (std::size_t i = 0; i < 64; ++i)
    data[i] = (i % 2) ? 1e6 + static_cast<double>(i) : 1e-12;
  ByteBuffer out;
  codec->compress(data, 1e-3, out);
  std::vector<double> back(64);
  codec->decompress(out, back);
  for (std::size_t i = 0; i < 64; ++i)
    EXPECT_LE(std::fabs(back[i] - data[i]), 1e-3) << i;
}

TEST(SzqExtra, ExceptionHeavyStream) {
  // Wildly varying magnitudes defeat both predictors: nearly every value
  // becomes an exception, and the stream must still round-trip in bound.
  const auto codec = make_compressor("szq");
  Prng rng(13);
  std::vector<double> data(20000);
  for (auto& x : data)
    x = rng.normal() * std::pow(10.0, rng.uniform(-8, 8));
  ByteBuffer out;
  codec->compress(data, 1e-9, out);
  std::vector<double> back(data.size());
  codec->decompress(out, back);
  for (std::size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::fabs(back[i] - data[i]), 1e-9) << i;
}

TEST(SzqExtra, ZeroRunBoundaryLengths) {
  // Runs right at the collapse threshold (8) and around block boundaries.
  const auto codec = make_compressor("szq");
  for (const std::size_t run : {7ul, 8ul, 9ul, 4095ul, 4096ul, 4097ul}) {
    std::vector<double> data(run + 20, 0.0);
    for (std::size_t i = 0; i < 10; ++i) data[i] = 1.0 + 0.01 * i;
    for (std::size_t i = run + 10; i < data.size(); ++i) data[i] = -2.0;
    ByteBuffer out;
    codec->compress(data, 1e-8, out);
    std::vector<double> back(data.size());
    codec->decompress(out, back);
    for (std::size_t i = 0; i < data.size(); ++i)
      ASSERT_LE(std::fabs(back[i] - data[i]), 1e-8) << run << ":" << i;
  }
}

TEST(CompressorExtra, RepeatedCompressionIsStable) {
  // compress(decompress(compress(x))) must not blow up in size or error:
  // the reconstruction is a fixed point within one more bound.
  const auto codec = make_compressor("szq");
  Prng rng(3);
  std::vector<double> data(8192);
  for (auto& x : data) x = std::sin(0.001 * static_cast<double>(&x - data.data()));
  ByteBuffer pass1, pass2;
  codec->compress(data, 1e-6, pass1);
  std::vector<double> mid(data.size());
  codec->decompress(pass1, mid);
  codec->compress(mid, 1e-6, pass2);
  std::vector<double> back(data.size());
  codec->decompress(pass2, back);
  for (std::size_t i = 0; i < data.size(); ++i)
    ASSERT_LE(std::fabs(back[i] - data[i]), 2e-6) << i;
  EXPECT_LT(pass2.size(), pass1.size() * 2);
}

}  // namespace
}  // namespace memq::compress
