// The fault-injection plane (common/faultpoint.hpp) and the storage-plane
// recovery it exercises: spec parsing, schedule semantics, and a full fault
// matrix over every catalogued site asserting the documented contract —
// each injected failure either recovers with amplitudes bit-identical to a
// fault-free run or surfaces as a typed memq::Error, never a crash, hang,
// or silent wrong answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "core/batch_scheduler.hpp"
#include "core/blob_store.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

// Every test leaves the plane disarmed, armed state must never leak into
// the rest of the suite.
class FaultPlaneTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::disarm(); }
};

// A configuration that routes every storage-plane code path through its
// fault points: the file backend with a zero resident budget (every blob
// access is spill I/O) and a small write-back cache (dirty evictions).
EngineConfig fault_cfg(std::uint32_t codec_threads = 1) {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  cfg.codec_threads = codec_threads;
  cfg.store_backend = StoreBackend::kFile;
  cfg.host_blob_budget_bytes = 0;
  cfg.cache_budget_bytes = 3 * (sizeof(amp_t) << 3);  // three chunks resident
  return cfg;
}

circuit::Circuit scenario_circuit() {
  return circuit::make_random_circuit(/*n=*/6, /*depth=*/4, /*seed=*/42,
                                      /*haar_1q=*/true);
}

std::vector<amp_t> dense_of(Engine& engine) {
  const auto sv = engine.to_dense();
  std::vector<amp_t> out(dim_of(engine.n_qubits()));
  for (index_t i = 0; i < static_cast<index_t>(out.size()); ++i)
    out[static_cast<std::size_t>(i)] = sv.amplitude(i);
  return out;
}

// Two batch members whose plans share the whole scenario prefix, then
// member 1 continues alone — the post-divergence solo stages are where
// batch.member.abort can fire.
std::vector<circuit::Circuit> batch_members() {
  const circuit::Circuit base = scenario_circuit();
  circuit::Circuit longer = base;
  longer.rz(0, 0.7);
  longer.h(1);
  return {base, longer};
}

// Runs the circuit, checkpoints, restores into a fresh engine, then runs a
// two-member batch — touching spill reads/writes/allocation, codec decodes,
// cache write-backs, lease acquisition, checkpoint save/load, and the batch
// scheduler's member-abort boundary. Returns the restored amplitudes
// followed by both members' amplitudes. An aborted batch member (site
// batch.member.abort) reports its serial result instead: the documented
// contract is that the abort corrupts nothing BUT the aborted window, so
// substituting the serial run keeps the output bit-identical to a
// fault-free scenario. The batch leg uses the lossless null codec so batch
// and serial member amplitudes agree bit for bit despite the cache.
std::vector<amp_t> run_scenario(const EngineConfig& cfg,
                                const std::string& ckpt) {
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg);
  engine->run(scenario_circuit());
  engine->save_state(ckpt);
  auto fresh = make_engine(EngineKind::kMemQSim, 6, cfg);
  fresh->load_state(ckpt);
  std::vector<amp_t> out = dense_of(*fresh);

  EngineConfig bcfg = cfg;
  bcfg.codec.compressor = "null";
  bcfg.batch_size = 2;
  const auto members = batch_members();
  BatchScheduler batch(6, bcfg);
  batch.run(members);
  for (std::uint32_t m = 0; m < 2; ++m) {
    sv::StateVector dense = [&] {
      if (!batch.member_aborted(m)) return batch.member_dense(m);
      EngineConfig one = bcfg;
      one.batch_size = 1;
      one.seed = bcfg.seed + m;
      auto serial = make_engine(EngineKind::kMemQSim, 6, one);
      serial->run(members[m]);
      return serial->to_dense();
    }();
    for (index_t i = 0; i < dim_of(6); ++i) out.push_back(dense.amplitude(i));
  }
  return out;
}

bool bit_identical(const std::vector<amp_t>& a, const std::vector<amp_t>& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(amp_t)) == 0;
}

// ---------------------------------------------------------------------------
// Spec parsing and schedule semantics (no engine involved).

TEST_F(FaultPlaneTest, UnknownSiteRejectedAtArmTimeListingCatalog) {
  try {
    fault::arm("blob.reed.eio@1");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown fault point"), std::string::npos) << what;
    // The error lists the catalog, so a typo is self-correcting.
    EXPECT_NE(what.find("blob.read.eio"), std::string::npos) << what;
  }
  EXPECT_FALSE(fault::armed());
}

TEST_F(FaultPlaneTest, MalformedSchedulesRejected) {
  EXPECT_THROW(fault::arm("blob.read.eio@"), InvalidArgument);
  EXPECT_THROW(fault::arm("blob.read.eio@x"), InvalidArgument);
  EXPECT_THROW(fault::arm("blob.read.eio@0"), InvalidArgument);
  EXPECT_THROW(fault::arm("blob.read.eio%0"), InvalidArgument);
  EXPECT_THROW(fault::arm("blob.read.eio~1.5"), InvalidArgument);
  EXPECT_THROW(fault::arm("blob.read.eio~"), InvalidArgument);
  EXPECT_THROW(fault::arm("seed=3"), InvalidArgument);  // names no site
  EXPECT_THROW(fault::arm(""), InvalidArgument);
  EXPECT_FALSE(fault::armed()) << "a bad spec must leave the plane disarmed";
}

TEST_F(FaultPlaneTest, NthScheduleFiresExactlyOnce) {
  fault::arm("blob.read.eio@3");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(MEMQ_FAULT("blob.read.eio"));
  EXPECT_EQ(fired,
            (std::vector<bool>{false, false, true, false, false, false}));
  EXPECT_EQ(fault::hits("blob.read.eio"), 6u);
  EXPECT_EQ(fault::fires("blob.read.eio"), 1u);
}

TEST_F(FaultPlaneTest, EveryKScheduleFiresPeriodically) {
  fault::arm("cache.writeback%2");
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(MEMQ_FAULT("cache.writeback"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
  EXPECT_EQ(fault::fires("cache.writeback"), 3u);
  EXPECT_EQ(fault::total_fires(), 3u);
}

TEST_F(FaultPlaneTest, ProbabilityScheduleIsSeedDeterministic) {
  const auto pattern = [](const std::string& spec) {
    fault::arm(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i)
      fired.push_back(MEMQ_FAULT("codec.decode.corrupt"));
    fault::disarm();
    return fired;
  };
  const auto a = pattern("codec.decode.corrupt~0.5,seed=7");
  const auto b = pattern("codec.decode.corrupt~0.5,seed=7");
  EXPECT_EQ(a, b) << "same seed must fire on the same hit numbers";
  const auto c = pattern("codec.decode.corrupt~0.5,seed=8");
  EXPECT_NE(a, c) << "different seeds must differ (64 coin flips)";
  const auto fires = static_cast<std::size_t>(
      std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 0u);
  EXPECT_LT(fires, 64u);
}

TEST_F(FaultPlaneTest, DisarmedHitsAreNotCounted) {
  EXPECT_FALSE(fault::armed());
  EXPECT_FALSE(MEMQ_FAULT("blob.read.eio"));
  fault::arm("blob.read.eio@1");
  EXPECT_EQ(fault::hits("blob.read.eio"), 0u)
      << "the disarmed path must not reach the registry";
}

TEST_F(FaultPlaneTest, UnscheduledSitesCountHitsButNeverFire) {
  fault::arm("blob.read.eio@1");
  EXPECT_FALSE(MEMQ_FAULT("cache.writeback"));
  EXPECT_EQ(fault::hits("cache.writeback"), 1u);
  EXPECT_EQ(fault::fires("cache.writeback"), 0u);
}

TEST_F(FaultPlaneTest, SummaryReportsFiredOfHits) {
  fault::arm("blob.read.eio@2");
  for (int i = 0; i < 3; ++i) (void)MEMQ_FAULT("blob.read.eio");
  const auto lines = fault::summary();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("blob.read.eio fired 1 of 3 hits"),
            std::string::npos)
      << lines[0];
}

TEST_F(FaultPlaneTest, InitFromEnvArmsOnce) {
  ASSERT_EQ(::setenv("MEMQ_FAULTS", "pager.acquire@2", 1), 0);
  EXPECT_TRUE(fault::init_from_env());
  EXPECT_TRUE(fault::armed());
  ::unsetenv("MEMQ_FAULTS");
}

// ---------------------------------------------------------------------------
// The full fault matrix: every catalogued site, fired once and on an
// every-K schedule, through a scenario that reaches all of them.

TEST_F(FaultPlaneTest, FullMatrixRecoversBitIdenticalOrThrowsTyped) {
  const std::string dir = ::testing::TempDir();
  const auto baseline = run_scenario(fault_cfg(), dir + "fault_base.ckpt");
  for (const fault::SiteInfo& site : fault::known_sites()) {
    for (const std::string sched : {"@1", "%3"}) {
      const std::string spec = std::string(site.name) + sched;
      SCOPED_TRACE("--faults '" + spec + "'");
      fault::arm(spec);
      bool threw = false;
      std::vector<amp_t> out;
      try {
        out = run_scenario(fault_cfg(), dir + "fault_armed.ckpt");
      } catch (const Error&) {
        // A documented typed failure. Anything that is not a memq::Error
        // escapes the harness and fails the test — that is the contract.
        threw = true;
      }
      EXPECT_GE(fault::hits(site.name), 1u)
          << "the scenario never reached fault point " << site.name;
      if (sched == "@1") {
        EXPECT_EQ(fault::fires(site.name), 1u)
            << site.name << " must fire exactly once under @1";
      }
      fault::disarm();
      if (!threw) {
        EXPECT_TRUE(bit_identical(out, baseline))
            << "recovered run diverged from the fault-free run";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Recovery policies, one by one.

TEST_F(FaultPlaneTest, TransientWriteFaultRetriedAndCounted) {
  const auto circ = scenario_circuit();
  auto clean = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  clean->run(circ);
  const auto expected = dense_of(*clean);

  fault::arm("blob.write.eio@1");
  auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  engine->run(circ);
  const auto got = dense_of(*engine);
  const EngineTelemetry& t = engine->telemetry();
  EXPECT_GE(t.io_retries, 1u);
  EXPECT_GE(t.faults_injected, 1u);
  EXPECT_EQ(t.degraded_to_ram, 0u);
  EXPECT_TRUE(bit_identical(got, expected));
}

TEST_F(FaultPlaneTest, EnospcDegradesToRamAndCompletes) {
  const auto circ = scenario_circuit();
  auto clean = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  clean->run(circ);
  const auto expected = dense_of(*clean);

  for (const char* spec : {"blob.write.enospc@1", "blob.allocate@1"}) {
    SCOPED_TRACE(spec);
    fault::arm(spec);
    auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
    engine->run(circ);
    const auto got = dense_of(*engine);
    EXPECT_EQ(engine->telemetry().degraded_to_ram, 1u)
        << "a persistent spill failure must degrade the store to RAM";
    EXPECT_TRUE(bit_identical(got, expected))
        << "degraded residency must not change amplitudes";
    fault::disarm();
  }
}

TEST_F(FaultPlaneTest, PersistentWritebackFailureSurfacesIoError) {
  fault::arm("cache.writeback%1");  // every attempt fails: retries exhaust
  auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  try {
    engine->run(scenario_circuit());
    engine->save_state(::testing::TempDir() + "fault_wb.ckpt");
    FAIL() << "expected IoError from an exhausted write-back retry";
  } catch (const IoError& e) {
    EXPECT_EQ(e.code(), EIO);
    EXPECT_NE(std::string(e.what()).find("write-back"), std::string::npos)
        << e.what();
  }
}

TEST_F(FaultPlaneTest, SpillIoErrorsCarryPathOffsetLengthErrno) {
  FileBlobStore store(/*budget_bytes=*/0);
  store.resize(1);
  compress::ChunkCodecConfig ccfg;
  ccfg.compressor = "null";
  compress::ChunkCodec codec(ccfg);
  std::vector<amp_t> amps(16, amp_t{1.0, -1.0});
  compress::ByteBuffer blob;
  codec.encode(amps, blob);

  fault::arm("blob.read.eio%1");  // every pread attempt fails
  store.write(0, std::move(blob));
  compress::ByteBuffer scratch;
  try {
    store.read(0, scratch);
    FAIL() << "expected IoError after read retries exhaust";
  } catch (const IoError& e) {
    const std::string what = e.what();
    EXPECT_EQ(e.code(), EIO);
    EXPECT_NE(what.find(store.path()), std::string::npos)
        << "missing path in: " << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
    EXPECT_NE(what.find("bytes"), std::string::npos) << what;
    EXPECT_NE(what.find(std::strerror(EIO)), std::string::npos)
        << "missing errno string in: " << what;
  }
}

TEST_F(FaultPlaneTest, PersistentWriteFailureDegradesInsteadOfLosingData) {
  // Even with EVERY pwrite failing, the store must never drop the only
  // copy of a blob: it degrades to RAM residency and keeps serving reads.
  FileBlobStore store(/*budget_bytes=*/0);
  store.resize(1);
  compress::ChunkCodecConfig ccfg;
  ccfg.compressor = "null";
  compress::ChunkCodec codec(ccfg);
  std::vector<amp_t> amps(16, amp_t{2.0, 3.0});
  compress::ByteBuffer blob;
  codec.encode(amps, blob);
  const compress::ByteBuffer expected = blob;

  fault::arm("blob.write.eio%1");
  store.write(0, std::move(blob));
  EXPECT_TRUE(store.degraded());
  EXPECT_EQ(store.stats().degraded_to_ram, 1u);
  fault::disarm();
  compress::ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), expected);
}

// ---------------------------------------------------------------------------
// Checkpoint atomicity: a failed save must leave the previous checkpoint
// loadable and no temp file behind.

std::vector<char> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

TEST_F(FaultPlaneTest, FailedCheckpointSaveKeepsPreviousFile) {
  const std::string path = ::testing::TempDir() + "fault_atomic.ckpt";
  auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  engine->run(scenario_circuit());
  const auto at_save = dense_of(*engine);
  engine->save_state(path);
  const auto good_bytes = slurp(path);
  ASSERT_FALSE(good_bytes.empty());

  // Mutate the state, then fail the next save mid-write.
  engine->run(circuit::make_random_circuit(6, 2, 43, true));
  fault::arm("checkpoint.save@1");
  EXPECT_THROW(engine->save_state(path), IoError);
  fault::disarm();

  EXPECT_EQ(slurp(path), good_bytes)
      << "a failed save must not touch the previous checkpoint";
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "the temp file must be removed on failure";

  auto fresh = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  fresh->load_state(path);
  EXPECT_TRUE(bit_identical(dense_of(*fresh), at_save));
}

TEST_F(FaultPlaneTest, CheckpointLoadFaultSurfacesCorruptData) {
  const std::string path = ::testing::TempDir() + "fault_load.ckpt";
  auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  engine->run(scenario_circuit());
  engine->save_state(path);

  fault::arm("checkpoint.load@1");
  auto fresh = make_engine(EngineKind::kMemQSim, 6, fault_cfg());
  EXPECT_THROW(fresh->load_state(path), CorruptData);
}

// ---------------------------------------------------------------------------
// Worker-thread faults must surface at the coordinator, not hang the
// pipeline or escape on a worker thread.

TEST_F(FaultPlaneTest, WorkerDecodeFaultSurfacesAtCoordinator) {
  fault::arm("codec.decode.corrupt@1");
  auto engine = make_engine(EngineKind::kMemQSim, 6, fault_cfg(4));
  EXPECT_THROW(
      {
        engine->run(scenario_circuit());
        (void)engine->to_dense();
      },
      CorruptData);
}

// ---------------------------------------------------------------------------
// Batch-member abort isolation (ISSUE 10): one member's injected failure
// must not corrupt its siblings.

TEST_F(FaultPlaneTest, BatchMemberAbortLeavesSiblingsBitIdentical) {
  // batch.member.abort fires only at a stage boundary while a member
  // executes ALONE (post-divergence), so clone sources are never stale.
  // Contract: the member is flagged, its remaining stages are skipped, and
  // every sibling's disjoint chunk window completes bit-identically to its
  // own serial run.
  constexpr qubit_t n = 6;
  constexpr std::uint32_t kK = 4;
  EngineConfig cfg = fault_cfg();
  cfg.codec.compressor = "null";  // lossless: batch == serial bit-identical
  cfg.batch_size = kK;

  // Shared GHZ prefix, diverging per-member tails: every member has solo
  // stages where the abort can land.
  std::vector<circuit::Circuit> members;
  for (std::uint32_t m = 0; m < kK; ++m) {
    circuit::Circuit c = circuit::make_ghz(n);
    c.rz(0, 0.2 + 0.3 * static_cast<double>(m));
    c.h(1);
    members.push_back(std::move(c));
  }

  fault::arm("batch.member.abort@1");
  BatchScheduler batch(n, cfg);
  batch.run(members);
  EXPECT_EQ(fault::fires("batch.member.abort"), 1u);
  fault::disarm();

  std::uint32_t aborted = 0;
  for (std::uint32_t m = 0; m < kK; ++m) {
    if (batch.member_aborted(m)) {
      ++aborted;
      continue;  // its window is documented-stale; siblings must be intact
    }
    EngineConfig one = cfg;
    one.batch_size = 1;
    one.seed = cfg.seed + m;
    auto serial = make_engine(EngineKind::kMemQSim, n, one);
    serial->run(members[m]);
    const auto expected = serial->to_dense();
    const auto got = batch.member_dense(m);
    EXPECT_EQ(got.max_abs_diff(expected), 0.0)
        << "sibling member " << m << " corrupted by another member's abort";
  }
  EXPECT_EQ(aborted, 1u) << "exactly one member must have aborted";
}

}  // namespace
}  // namespace memq::core
