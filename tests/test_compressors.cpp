// Property suite over all registered compressors: round-trip correctness for
// lossless codecs, pointwise error bounds for lossy codecs, across data
// distributions that resemble real state-vector planes.
#include "compress/compressor.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "common/prng.hpp"
#include "compress/quantizer.hpp"

namespace memq::compress {
namespace {

enum class DataKind {
  kSmoothWave,   // sinusoid: the QFT-like smooth plane
  kGaussian,     // dense random state (Haar-ish after normalization)
  kSparse,       // mostly zeros with spikes: GHZ/Grover-like
  kConstant,     // all equal
  kAllZero,      // empty subspace chunk
  kAlternating,  // worst case for run collapsing
};

std::vector<double> make_data(DataKind kind, std::size_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<double> v(n);
  switch (kind) {
    case DataKind::kSmoothWave:
      for (std::size_t i = 0; i < n; ++i)
        v[i] = 0.3 * std::sin(0.001 * static_cast<double>(i)) +
               0.05 * std::sin(0.07 * static_cast<double>(i));
      break;
    case DataKind::kGaussian:
      for (auto& x : v) x = rng.normal() * 1e-3;
      break;
    case DataKind::kSparse:
      for (auto& x : v) x = rng.uniform() < 0.01 ? rng.normal() : 0.0;
      break;
    case DataKind::kConstant:
      for (auto& x : v) x = 0.70710678118654752;
      break;
    case DataKind::kAllZero:
      break;
    case DataKind::kAlternating:
      for (std::size_t i = 0; i < n; ++i)
        v[i] = (i % 2 ? 1.0 : -1.0) * (1.0 + 0.001 * rng.normal());
      break;
  }
  return v;
}

std::string kind_name(DataKind k) {
  switch (k) {
    case DataKind::kSmoothWave: return "smooth";
    case DataKind::kGaussian: return "gaussian";
    case DataKind::kSparse: return "sparse";
    case DataKind::kConstant: return "constant";
    case DataKind::kAllZero: return "zero";
    case DataKind::kAlternating: return "alternating";
  }
  return "?";
}

using Param = std::tuple<std::string, DataKind, std::size_t, double>;

class CompressorRoundTrip : public ::testing::TestWithParam<Param> {};

TEST_P(CompressorRoundTrip, BoundHolds) {
  const auto& [name, kind, n, eb] = GetParam();
  const auto codec = make_compressor(name);
  const auto data = make_data(kind, n, 0xC0FFEE + n);

  ByteBuffer out;
  codec->compress(data, eb, out);
  std::vector<double> back(n);
  codec->decompress(out, back);

  if (codec->lossless()) {
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(back[i], data[i]) << name << " lossless mismatch at " << i;
  } else {
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_LE(std::fabs(back[i] - data[i]), eb)
          << name << "/" << kind_name(kind) << " bound violated at " << i
          << ": " << data[i] << " -> " << back[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CompressorRoundTrip,
    ::testing::Combine(
        ::testing::Values("szq", "bpc", "gorilla", "lzh", "null"),
        ::testing::Values(DataKind::kSmoothWave, DataKind::kGaussian,
                          DataKind::kSparse, DataKind::kConstant,
                          DataKind::kAllZero, DataKind::kAlternating),
        ::testing::Values(std::size_t{0}, std::size_t{1}, std::size_t{63},
                          std::size_t{64}, std::size_t{1000},
                          std::size_t{65536}),
        ::testing::Values(1e-3, 1e-6, 1e-10)),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::get<0>(info.param) + "_" +
             kind_name(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param)) + "_eb" +
             std::to_string(
                 static_cast<int>(-std::log10(std::get<3>(info.param))));
    });

TEST(Szq, CompressesSmoothDataWell) {
  const auto codec = make_compressor("szq");
  const auto data = make_data(DataKind::kSmoothWave, 1 << 16, 1);
  ByteBuffer out;
  codec->compress(data, 1e-4, out);
  const double ratio =
      static_cast<double>(data.size() * sizeof(double)) /
      static_cast<double>(out.size());
  EXPECT_GT(ratio, 8.0) << "smooth data should compress >8x at 1e-4";
}

TEST(Szq, CompressesSparseDataExtremelyWell) {
  const auto codec = make_compressor("szq");
  const auto data = make_data(DataKind::kSparse, 1 << 16, 2);
  ByteBuffer out;
  codec->compress(data, 1e-6, out);
  const double ratio =
      static_cast<double>(data.size() * sizeof(double)) /
      static_cast<double>(out.size());
  EXPECT_GT(ratio, 20.0) << "1% dense data should compress >20x";
}

TEST(Szq, TighterBoundCostsMoreBits) {
  const auto codec = make_compressor("szq");
  const auto data = make_data(DataKind::kGaussian, 1 << 15, 3);
  ByteBuffer loose, tight;
  codec->compress(data, 1e-3, loose);
  codec->compress(data, 1e-8, tight);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Bpc, TighterBoundCostsMoreBits) {
  const auto codec = make_compressor("bpc");
  const auto data = make_data(DataKind::kGaussian, 1 << 15, 4);
  ByteBuffer loose, tight;
  codec->compress(data, 1e-3, loose);
  codec->compress(data, 1e-8, tight);
  EXPECT_LT(loose.size(), tight.size());
}

TEST(Gorilla, ConstantDataCompressesToAlmostNothing) {
  const auto codec = make_compressor("gorilla");
  const std::vector<double> data(10000, 0.125);
  ByteBuffer out;
  codec->compress(data, 0.0, out);
  EXPECT_LT(out.size(), 10000u / 4);  // ~1 bit per repeated value
}

TEST(Gorilla, HandlesSpecialValues) {
  const auto codec = make_compressor("gorilla");
  const std::vector<double> data{0.0, -0.0, 1e308, -1e308, 5e-324,
                                 1.0, -1.0, 0.1,   0.2,    0.30000000000000004};
  ByteBuffer out;
  codec->compress(data, 0.0, out);
  std::vector<double> back(data.size());
  codec->decompress(out, back);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(std::signbit(back[i]), std::signbit(data[i]));
    EXPECT_EQ(back[i], data[i]);
  }
}

TEST(Quantizer, ExactPredictionYieldsZeroSymbol) {
  const auto qr = quantize(1.0, 1.0, 1e-6);
  EXPECT_EQ(qr.symbol, kSymZero);
  EXPECT_DOUBLE_EQ(qr.reconstructed, 1.0);
}

TEST(Quantizer, BoundRespectedAcrossMagnitudes) {
  Prng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double eb = std::pow(10.0, -1.0 - rng.uniform() * 10.0);
    const double pred = rng.normal();
    const double x = pred + rng.normal() * eb * 100.0;
    const auto qr = quantize(x, pred, eb);
    EXPECT_LE(std::fabs(qr.reconstructed - x), eb);
  }
}

TEST(Quantizer, FarValueBecomesException) {
  const auto qr = quantize(1e9, 0.0, 1e-9);
  EXPECT_EQ(qr.symbol, kSymException);
  EXPECT_DOUBLE_EQ(qr.reconstructed, 1e9);
}

TEST(Registry, KnownNamesConstruct) {
  for (const auto& name : compressor_names()) {
    const auto c = make_compressor(name);
    EXPECT_EQ(c->name(), name);
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_compressor("lz77"), InvalidArgument);
}

TEST(Registry, ListsAllFour) {
  const auto names = compressor_names();
  EXPECT_EQ(names.size(), 5u);
}

TEST(Compressors, LossyRejectsZeroBound) {
  std::vector<double> data(10, 1.0);
  ByteBuffer out;
  EXPECT_THROW(make_compressor("szq")->compress(data, 0.0, out), Error);
  EXPECT_THROW(make_compressor("bpc")->compress(data, -1.0, out), Error);
}

TEST(Compressors, DecompressCountMismatchThrows) {
  std::vector<double> data(100, 0.5);
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    ByteBuffer out;
    codec->compress(data, 1e-4, out);
    std::vector<double> wrong(99);
    EXPECT_THROW(codec->decompress(out, wrong), CorruptData)
        << name << " accepted wrong output size";
  }
}

TEST(Compressors, TruncatedPayloadThrows) {
  std::vector<double> data = make_data(DataKind::kGaussian, 4096, 9);
  for (const auto& name : compressor_names()) {
    const auto codec = make_compressor(name);
    ByteBuffer out;
    codec->compress(data, 1e-4, out);
    ASSERT_GT(out.size(), 16u);
    out.resize(out.size() / 2);
    std::vector<double> back(data.size());
    EXPECT_THROW(codec->decompress(out, back), CorruptData)
        << name << " accepted truncated payload";
  }
}

}  // namespace
}  // namespace memq::compress
