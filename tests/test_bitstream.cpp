#include "compress/bitstream.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"

namespace memq::compress {
namespace {

TEST(BitStream, SingleBits) {
  ByteBuffer buf;
  BitWriter w(buf);
  const bool pattern[] = {true, false, true, true, false, false, true, false,
                          true};
  for (const bool b : pattern) w.write_bit(b);
  w.flush();
  BitReader r(buf);
  for (const bool b : pattern) EXPECT_EQ(r.read_bit(), b);
}

TEST(BitStream, FullWidthWords) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(~0ull, 64);
  w.write(0x123456789ABCDEFull, 64);
  w.flush();
  BitReader r(buf);
  EXPECT_EQ(r.read(64), ~0ull);
  EXPECT_EQ(r.read(64), 0x123456789ABCDEFull);
}

TEST(BitStream, UnalignedWideWrites) {
  // A 64-bit write landing on a non-zero bit offset exercises the
  // accumulator-spill path.
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(0b101, 3);
  w.write(0xFEDCBA9876543210ull, 64);
  w.write(0x7F, 7);
  w.flush();
  BitReader r(buf);
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(64), 0xFEDCBA9876543210ull);
  EXPECT_EQ(r.read(7), 0x7Fu);
}

TEST(BitStream, ZeroWidthWriteIsNoop) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(0xFF, 0);
  w.write_bit(true);
  w.flush();
  EXPECT_EQ(buf.size(), 1u);
  BitReader r(buf);
  EXPECT_EQ(r.read(0), 0u);
  EXPECT_TRUE(r.read_bit());
}

TEST(BitStream, MasksHighBits) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(0xFF, 4);  // only low 4 bits should land
  w.flush();
  BitReader r(buf);
  EXPECT_EQ(r.read(8), 0x0Fu);
}

TEST(BitStream, RandomRoundTrip) {
  Prng rng(99);
  ByteBuffer buf;
  BitWriter w(buf);
  std::vector<std::pair<std::uint64_t, unsigned>> items;
  for (int i = 0; i < 5000; ++i) {
    const unsigned n = static_cast<unsigned>(rng.uniform_index(65));
    const std::uint64_t v = rng.next_u64() & detail::low_mask(n);
    items.emplace_back(v, n);
    w.write(v, n);
  }
  w.flush();
  BitReader r(buf);
  for (const auto& [v, n] : items) EXPECT_EQ(r.read(n), v);
}

TEST(BitStream, TruncationThrows) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(0xABCD, 16);
  w.flush();
  BitReader r(buf);
  (void)r.read(16);
  EXPECT_THROW((void)r.read(1), CorruptData);
}

TEST(BitStream, AlignSkipsToByteBoundary) {
  ByteBuffer buf;
  BitWriter w(buf);
  w.write(0b1, 1);
  w.flush();  // pads with zeros
  w.write(0xAA, 8);
  w.flush();  // the word-batched writer buffers until the final flush
  BitReader r(buf);
  EXPECT_TRUE(r.read_bit());
  r.align();
  EXPECT_EQ(r.read(8), 0xAAu);
}

TEST(BitStream, BitsWrittenCount) {
  ByteBuffer buf;
  BitWriter w(buf);
  EXPECT_EQ(w.bits_written(), 0u);
  w.write(0, 13);
  EXPECT_EQ(w.bits_written(), 13u);
  w.flush();
  EXPECT_EQ(buf.size(), 2u);
}

}  // namespace
}  // namespace memq::compress
