// StatePager: lease exclusivity, zero-chunk semantics, and backend parity —
// the RAM backend against the dense oracle (the pre-refactor behavior) and
// the file backend bit-identical to RAM under a null codec.
#include <gtest/gtest.h>

#include <vector>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"
#include "core/state_pager.hpp"
#include "sv/simulator.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

// The pager borrows the config and telemetry for its whole lifetime, so a
// harness keeps them alongside it.
struct PagerHarness {
  EngineConfig cfg;
  EngineTelemetry telemetry;
  double charged = 0.0;
  StatePager pager;

  explicit PagerHarness(qubit_t n, EngineConfig config)
      : cfg(std::move(config)),
        pager(n, cfg, telemetry, [this](double s) { charged += s; }) {}
};

EngineConfig exact_cfg(qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.compressor = "null";  // bit-exact round trips
  return cfg;
}

TEST(PagerLease, SecondLeaseOnLiveChunkThrows) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease w = h.pager.acquire_write(0);
  EXPECT_THROW((void)h.pager.acquire_read(0), InvalidArgument);
  EXPECT_THROW((void)h.pager.acquire_write(0), InvalidArgument);
  // A distinct chunk is unaffected.
  StatePager::Lease r = h.pager.acquire_read(1);
  h.pager.release(std::move(r), false);
  h.pager.release(std::move(w), false);
  // Released chunks can be leased again.
  h.pager.release(h.pager.acquire_write(0), false);
}

TEST(PagerLease, PairLeaseClaimsBothChunks) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease pair = h.pager.acquire_write_pair(0, 2);
  EXPECT_EQ(pair.amps().size(), 2 * h.pager.chunk_amps());
  EXPECT_THROW((void)h.pager.acquire_read(0), InvalidArgument);
  EXPECT_THROW((void)h.pager.acquire_write(2), InvalidArgument);
  h.pager.release(h.pager.acquire_read(1), false);  // the chunk in between
  h.pager.release(std::move(pair), false);
  h.pager.release(h.pager.acquire_read(2), false);
}

TEST(PagerLease, WriteReleaseRoundTrip) {
  PagerHarness h(5, exact_cfg(3));
  std::vector<amp_t> written;
  {
    StatePager::Lease w = h.pager.acquire_write(2);
    auto amps = w.amps();
    for (std::size_t k = 0; k < amps.size(); ++k)
      amps[k] = {0.25 * static_cast<double>(k), -1.0};
    written.assign(amps.begin(), amps.end());
    h.pager.release(std::move(w), true);
  }
  StatePager::Lease r = h.pager.acquire_read(2);
  ASSERT_EQ(r.amps().size(), written.size());
  for (std::size_t k = 0; k < written.size(); ++k)
    EXPECT_EQ(r.amps()[k], written[k]) << "amp " << k;
  h.pager.release(std::move(r), false);
}

TEST(PagerZero, MatchesStoreAndTracksWrites) {
  PagerHarness h(6, exact_cfg(3));
  // Fresh pager: |0..0> lives in chunk 0, everything else is zero.
  for (index_t i = 0; i < h.pager.n_chunks(); ++i) {
    EXPECT_EQ(h.pager.is_zero(i), i != 0) << "chunk " << i;
    EXPECT_EQ(h.pager.is_zero(i), h.pager.store().is_zero_chunk(i));
  }
  EXPECT_EQ(h.pager.nonzero_jobs().size(), 1u);

  // Writing amplitudes clears the flag; writing zeros restores it.
  StatePager::Lease w = h.pager.acquire_write(3);
  w.amps()[0] = {1.0, 0.0};
  h.pager.release(std::move(w), true);
  EXPECT_FALSE(h.pager.is_zero(3));
  EXPECT_EQ(h.pager.nonzero_jobs().size(), 2u);

  StatePager::Lease z = h.pager.acquire_write(3);
  std::fill(z.amps().begin(), z.amps().end(), amp_t{});
  h.pager.release(std::move(z), true);
  EXPECT_TRUE(h.pager.is_zero(3));
}

TEST(PagerZero, CacheAwareZeroQuery) {
  // A dirty cached chunk must be reported non-zero even while its (stale)
  // blob still holds the zero fast-path encoding.
  EngineConfig cfg = exact_cfg(3);
  cfg.cache_budget_bytes = 1 << 20;
  PagerHarness h(6, cfg);
  StatePager::Lease w = h.pager.acquire_write(5);
  w.amps()[0] = {0.5, 0.5};
  h.pager.release(std::move(w), true);
  EXPECT_FALSE(h.pager.is_zero(5));
}

TEST(PagerParity, RamBackendMatchesDenseOracle) {
  // The RAM backend is the historical storage path; the engines on top of
  // the pager must still reproduce the dense reference on real circuits.
  constexpr qubit_t n = 7;
  const Circuit circuits[] = {circuit::make_qft(n),
                              circuit::make_grover(n, 0b0110101, 2),
                              circuit::make_random_circuit(n, 10, 77)};
  for (const Circuit& c : circuits) {
    EngineConfig cfg;
    cfg.chunk_qubits = 3;
    cfg.codec.bound = 1e-9;
    auto engine = make_engine(EngineKind::kMemQSim, n, cfg);
    engine->run(c);
    sv::Simulator oracle(n);
    oracle.run(c);
    EXPECT_LT(engine->to_dense().max_abs_diff(oracle.state()), 1e-6);
  }
}

TEST(PagerParity, FileBackendBitIdenticalToRam) {
  constexpr qubit_t n = 8;
  const Circuit c = circuit::make_qft(n);
  EngineConfig ram_cfg = exact_cfg(4);
  EngineConfig file_cfg = ram_cfg;
  file_cfg.store_backend = StoreBackend::kFile;
  file_cfg.host_blob_budget_bytes = 2048;  // well below the compressed state

  auto ram = make_engine(EngineKind::kMemQSim, n, ram_cfg);
  auto file = make_engine(EngineKind::kMemQSim, n, file_cfg);
  ram->run(c);
  file->run(c);

  // Null codec: the backends must agree bit for bit, with identical chunk
  // traffic — spilling changes where bytes live, never what they are.
  EXPECT_EQ(file->to_dense().max_abs_diff(ram->to_dense()), 0.0);
  EXPECT_EQ(file->telemetry().chunk_loads, ram->telemetry().chunk_loads);
  EXPECT_EQ(file->telemetry().chunk_stores, ram->telemetry().chunk_stores);
  EXPECT_EQ(file->telemetry().zero_chunks_skipped,
            ram->telemetry().zero_chunks_skipped);

  EXPECT_GT(file->telemetry().spill_writes, 0u);
  EXPECT_LE(file->telemetry().peak_resident_blob_bytes,
            file_cfg.host_blob_budget_bytes);
  EXPECT_EQ(ram->telemetry().spill_writes, 0u);
  EXPECT_EQ(ram->telemetry().spill_reads, 0u);
}

TEST(PagerParity, FileBackendHoldsBudgetOnWuEngine) {
  constexpr qubit_t n = 7;
  EngineConfig cfg = exact_cfg(3);
  cfg.store_backend = StoreBackend::kFile;
  cfg.host_blob_budget_bytes = 1024;
  auto engine = make_engine(EngineKind::kWu, n, cfg);
  const Circuit c = circuit::make_random_circuit(n, 8, 13);
  engine->run(c);
  sv::Simulator oracle(n);
  oracle.run(c);
  EXPECT_LT(engine->to_dense().max_abs_diff(oracle.state()), 1e-9);
  EXPECT_LE(engine->telemetry().peak_resident_blob_bytes,
            cfg.host_blob_budget_bytes);
}

TEST(PagerReset, ClearsStateAndRefusesLiveLeases) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease w = h.pager.acquire_write(1);
  w.amps()[0] = {1.0, 0.0};
  EXPECT_THROW(h.pager.reset(), Error);  // live lease
  h.pager.release(std::move(w), true);
  h.pager.reset();
  EXPECT_TRUE(h.pager.is_zero(1));
  EXPECT_FALSE(h.pager.is_zero(0));
}

}  // namespace
}  // namespace memq::core
