// StatePager: lease exclusivity, zero-chunk semantics, and backend parity —
// the RAM backend against the dense oracle (the pre-refactor behavior) and
// the file backend bit-identical to RAM under a null codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"
#include "core/state_pager.hpp"
#include "sv/simulator.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

// The pager borrows the config and telemetry for its whole lifetime, so a
// harness keeps them alongside it.
struct PagerHarness {
  EngineConfig cfg;
  EngineTelemetry telemetry;
  double charged = 0.0;
  StatePager pager;

  explicit PagerHarness(qubit_t n, EngineConfig config)
      : cfg(std::move(config)),
        pager(n, cfg, telemetry, [this](double s) { charged += s; }) {}
};

EngineConfig exact_cfg(qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.compressor = "null";  // bit-exact round trips
  return cfg;
}

TEST(PagerLease, SecondLeaseOnLiveChunkThrows) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease w = h.pager.acquire_write(0);
  EXPECT_THROW((void)h.pager.acquire_read(0), InvalidArgument);
  EXPECT_THROW((void)h.pager.acquire_write(0), InvalidArgument);
  // A distinct chunk is unaffected.
  StatePager::Lease r = h.pager.acquire_read(1);
  h.pager.release(std::move(r), false);
  h.pager.release(std::move(w), false);
  // Released chunks can be leased again.
  h.pager.release(h.pager.acquire_write(0), false);
}

TEST(PagerLease, PairLeaseClaimsBothChunks) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease pair = h.pager.acquire_write_pair(0, 2);
  EXPECT_EQ(pair.amps().size(), 2 * h.pager.chunk_amps());
  EXPECT_THROW((void)h.pager.acquire_read(0), InvalidArgument);
  EXPECT_THROW((void)h.pager.acquire_write(2), InvalidArgument);
  h.pager.release(h.pager.acquire_read(1), false);  // the chunk in between
  h.pager.release(std::move(pair), false);
  h.pager.release(h.pager.acquire_read(2), false);
}

TEST(PagerLease, WriteReleaseRoundTrip) {
  PagerHarness h(5, exact_cfg(3));
  std::vector<amp_t> written;
  {
    StatePager::Lease w = h.pager.acquire_write(2);
    auto amps = w.amps();
    for (std::size_t k = 0; k < amps.size(); ++k)
      amps[k] = {0.25 * static_cast<double>(k), -1.0};
    written.assign(amps.begin(), amps.end());
    h.pager.release(std::move(w), true);
  }
  StatePager::Lease r = h.pager.acquire_read(2);
  ASSERT_EQ(r.amps().size(), written.size());
  for (std::size_t k = 0; k < written.size(); ++k)
    EXPECT_EQ(r.amps()[k], written[k]) << "amp " << k;
  h.pager.release(std::move(r), false);
}

TEST(PagerZero, MatchesStoreAndTracksWrites) {
  PagerHarness h(6, exact_cfg(3));
  // Fresh pager: |0..0> lives in chunk 0, everything else is zero.
  for (index_t i = 0; i < h.pager.n_chunks(); ++i) {
    EXPECT_EQ(h.pager.is_zero(i), i != 0) << "chunk " << i;
    EXPECT_EQ(h.pager.is_zero(i), h.pager.store().is_zero_chunk(i));
  }
  EXPECT_EQ(h.pager.nonzero_jobs().size(), 1u);

  // Writing amplitudes clears the flag; writing zeros restores it.
  StatePager::Lease w = h.pager.acquire_write(3);
  w.amps()[0] = {1.0, 0.0};
  h.pager.release(std::move(w), true);
  EXPECT_FALSE(h.pager.is_zero(3));
  EXPECT_EQ(h.pager.nonzero_jobs().size(), 2u);

  StatePager::Lease z = h.pager.acquire_write(3);
  std::fill(z.amps().begin(), z.amps().end(), amp_t{});
  h.pager.release(std::move(z), true);
  EXPECT_TRUE(h.pager.is_zero(3));
}

TEST(PagerZero, CacheAwareZeroQuery) {
  // A dirty cached chunk must be reported non-zero even while its (stale)
  // blob still holds the zero fast-path encoding.
  EngineConfig cfg = exact_cfg(3);
  cfg.cache_budget_bytes = 1 << 20;
  PagerHarness h(6, cfg);
  StatePager::Lease w = h.pager.acquire_write(5);
  w.amps()[0] = {0.5, 0.5};
  h.pager.release(std::move(w), true);
  EXPECT_FALSE(h.pager.is_zero(5));
}

TEST(PagerParity, RamBackendMatchesDenseOracle) {
  // The RAM backend is the historical storage path; the engines on top of
  // the pager must still reproduce the dense reference on real circuits.
  constexpr qubit_t n = 7;
  const Circuit circuits[] = {circuit::make_qft(n),
                              circuit::make_grover(n, 0b0110101, 2),
                              circuit::make_random_circuit(n, 10, 77)};
  for (const Circuit& c : circuits) {
    EngineConfig cfg;
    cfg.chunk_qubits = 3;
    cfg.codec.bound = 1e-9;
    auto engine = make_engine(EngineKind::kMemQSim, n, cfg);
    engine->run(c);
    sv::Simulator oracle(n);
    oracle.run(c);
    EXPECT_LT(engine->to_dense().max_abs_diff(oracle.state()), 1e-6);
  }
}

TEST(PagerParity, FileBackendBitIdenticalToRam) {
  constexpr qubit_t n = 8;
  const Circuit c = circuit::make_qft(n);
  EngineConfig ram_cfg = exact_cfg(4);
  // Dedup off: this test pins the HISTORICAL spill path (with dedup on,
  // the QFT's redundant intermediate states collapse under the budget and
  // nothing spills — see PagerDedup/DifferentialOracle for that arm).
  ram_cfg.dedup = false;
  EngineConfig file_cfg = ram_cfg;
  file_cfg.store_backend = StoreBackend::kFile;
  file_cfg.host_blob_budget_bytes = 2048;  // well below the compressed state

  auto ram = make_engine(EngineKind::kMemQSim, n, ram_cfg);
  auto file = make_engine(EngineKind::kMemQSim, n, file_cfg);
  ram->run(c);
  file->run(c);

  // Null codec: the backends must agree bit for bit, with identical chunk
  // traffic — spilling changes where bytes live, never what they are.
  EXPECT_EQ(file->to_dense().max_abs_diff(ram->to_dense()), 0.0);
  EXPECT_EQ(file->telemetry().chunk_loads, ram->telemetry().chunk_loads);
  EXPECT_EQ(file->telemetry().chunk_stores, ram->telemetry().chunk_stores);
  EXPECT_EQ(file->telemetry().zero_chunks_skipped,
            ram->telemetry().zero_chunks_skipped);

  EXPECT_GT(file->telemetry().spill_writes, 0u);
  EXPECT_LE(file->telemetry().peak_resident_blob_bytes,
            file_cfg.host_blob_budget_bytes);
  EXPECT_EQ(ram->telemetry().spill_writes, 0u);
  EXPECT_EQ(ram->telemetry().spill_reads, 0u);
}

TEST(PagerParity, FileBackendHoldsBudgetOnWuEngine) {
  constexpr qubit_t n = 7;
  EngineConfig cfg = exact_cfg(3);
  cfg.store_backend = StoreBackend::kFile;
  cfg.host_blob_budget_bytes = 1024;
  auto engine = make_engine(EngineKind::kWu, n, cfg);
  const Circuit c = circuit::make_random_circuit(n, 8, 13);
  engine->run(c);
  sv::Simulator oracle(n);
  oracle.run(c);
  EXPECT_LT(engine->to_dense().max_abs_diff(oracle.state()), 1e-9);
  EXPECT_LE(engine->telemetry().peak_resident_blob_bytes,
            cfg.host_blob_budget_bytes);
}

// ---------------------------------------------------------------------------
// Redundancy-aware storage: dedup, alias hits, CoW, checkpoints, faults
// ---------------------------------------------------------------------------

std::vector<amp_t> patterned_amps(std::size_t n, double seed) {
  std::vector<amp_t> v(n);
  for (std::size_t k = 0; k < n; ++k)
    v[k] = {seed + 0.125 * static_cast<double>(k),
            seed - 0.25 * static_cast<double>(k)};
  return v;
}

void write_chunk(StatePager& pager, index_t i, const std::vector<amp_t>& v) {
  StatePager::Lease w = pager.acquire_write(i);
  std::copy(v.begin(), v.end(), w.amps().begin());
  pager.release(std::move(w), true);
}

std::vector<amp_t> read_chunk(StatePager& pager, index_t i) {
  StatePager::Lease r = pager.acquire_read(i);
  std::vector<amp_t> v(r.amps().begin(), r.amps().end());
  pager.release(std::move(r), false);
  return v;
}

TEST(PagerDedup, IdenticalChunksShareOnePhysicalBlob) {
  PagerHarness h(6, exact_cfg(3));  // dedup defaults on
  // Even the fresh |0..0> dedups (chunks 1..7 share one zero blob), so
  // assert deltas from the initialized state.
  h.pager.refresh_telemetry();
  const std::uint64_t hits0 = h.telemetry.dedup_hits;
  const std::uint64_t cow0 = h.telemetry.cow_breaks;
  EXPECT_GT(hits0, 0u);

  const auto v = patterned_amps(h.pager.chunk_amps(), 3.0);
  for (index_t i = 1; i <= 4; ++i) write_chunk(h.pager, i, v);
  h.pager.refresh_telemetry();
  // Chunk 1 detached from the shared zero blob (one CoW break); 2..4 then
  // coalesced onto chunk 1's new physical copy.
  EXPECT_EQ(h.telemetry.dedup_hits, hits0 + 3);
  EXPECT_EQ(h.telemetry.cow_breaks, cow0 + 1);
  EXPECT_GT(h.telemetry.dedup_bytes_saved, 0u);

  // Divergent rewrite of one share: the others must keep their bytes.
  write_chunk(h.pager, 2, patterned_amps(h.pager.chunk_amps(), 9.0));
  h.pager.refresh_telemetry();
  EXPECT_EQ(h.telemetry.cow_breaks, cow0 + 2);
  EXPECT_EQ(read_chunk(h.pager, 1), v);
  EXPECT_EQ(read_chunk(h.pager, 4), v);
}

TEST(PagerDedup, ConstantChunkQueryAndCounters) {
  PagerHarness h(6, exact_cfg(3));
  const std::vector<amp_t> fill(h.pager.chunk_amps(), amp_t{0.25, -0.5});
  write_chunk(h.pager, 3, fill);
  EXPECT_TRUE(h.pager.is_constant(3));
  EXPECT_FALSE(h.pager.is_zero(3));
  EXPECT_EQ(read_chunk(h.pager, 3), fill);  // fill decode, codec bypassed
  h.pager.refresh_telemetry();
  EXPECT_GE(h.telemetry.constant_chunks_stored, 1u);
  EXPECT_GE(h.telemetry.constant_chunks_materialized, 1u);
  // Non-constant data clears the flag again.
  write_chunk(h.pager, 3, patterned_amps(h.pager.chunk_amps(), 1.0));
  EXPECT_FALSE(h.pager.is_constant(3));
}

TEST(PagerDedup, CacheAliasLoadThenDivergentWrite) {
  EngineConfig cfg = exact_cfg(3);
  cfg.cache_budget_bytes = sizeof(amp_t) * 8;  // exactly one 8-amp chunk
  PagerHarness h(6, cfg);
  const auto v = patterned_amps(h.pager.chunk_amps(), 2.0);
  write_chunk(h.pager, 1, v);
  write_chunk(h.pager, 2, v);
  std::ostringstream flush;  // checkpoint barrier: every dirty entry lands
  h.pager.checkpoint_to(flush);

  // Load 1 (decode miss: cached clean, decode provenance), then 2: same
  // physical blob, so 2 is served by copying 1's cached bytes — no decode.
  EXPECT_EQ(read_chunk(h.pager, 1), v);
  EXPECT_EQ(read_chunk(h.pager, 2), v);
  h.pager.refresh_telemetry();
  EXPECT_GE(h.telemetry.cache_alias_hits, 1u);

  // Writing through the aliased entry must not leak into chunk 1.
  const auto w = patterned_amps(h.pager.chunk_amps(), 8.0);
  write_chunk(h.pager, 2, w);
  std::ostringstream flush2;
  h.pager.checkpoint_to(flush2);
  EXPECT_EQ(read_chunk(h.pager, 1), v);
  EXPECT_EQ(read_chunk(h.pager, 2), w);
}

TEST(PagerDedup, CheckpointBytesIdenticalDedupOnAndOff) {
  // The checkpoint writes the LOGICAL store: dedup must be invisible in the
  // file format (MQCKPT02 streams stay interchangeable between arms).
  EngineConfig on_cfg = exact_cfg(3);
  EngineConfig off_cfg = on_cfg;
  off_cfg.dedup = false;
  PagerHarness on(6, on_cfg), off(6, off_cfg);
  const auto shared = patterned_amps(8, 4.0);
  const std::vector<amp_t> fill(8, amp_t{0.5, 0.5});
  for (PagerHarness* h : {&on, &off}) {
    write_chunk(h->pager, 1, shared);
    write_chunk(h->pager, 2, shared);
    write_chunk(h->pager, 5, fill);
  }
  std::ostringstream a, b;
  on.pager.checkpoint_to(a);
  off.pager.checkpoint_to(b);
  EXPECT_EQ(a.str(), b.str());
}

TEST(PagerDedup, RestoreRecoalescesSharedBlobs) {
  EngineConfig off_cfg = exact_cfg(3);
  off_cfg.dedup = false;
  PagerHarness off(6, off_cfg);
  const auto shared = patterned_amps(8, 6.0);
  write_chunk(off.pager, 1, shared);
  write_chunk(off.pager, 2, shared);
  write_chunk(off.pager, 3, shared);
  std::ostringstream ckpt;
  off.pager.checkpoint_to(ckpt);

  // Restoring a dedup-off checkpoint into a dedup-on pager re-coalesces the
  // identical blobs on ingest.
  PagerHarness on(6, exact_cfg(3));
  std::istringstream in(ckpt.str());
  on.pager.restore_from(in);
  on.pager.refresh_telemetry();
  EXPECT_GE(on.telemetry.dedup_hits, 2u);
  EXPECT_EQ(read_chunk(on.pager, 1), shared);
  EXPECT_EQ(read_chunk(on.pager, 2), shared);
  EXPECT_EQ(read_chunk(on.pager, 3), shared);
}

TEST(PagerDedup, TransientSpillFaultUnderDedupStaysBitIdentical) {
  // The PR 6 fault plane must hold with shared physical blobs: a transient
  // write fault is retried and the state stays bit-identical to a clean
  // dedup-off run.
  constexpr qubit_t n = 7;
  const Circuit c = circuit::make_qft(n);
  EngineConfig clean_cfg = exact_cfg(3);
  clean_cfg.store_backend = StoreBackend::kFile;
  // Zero budget: every physical write hits the file, so the fault site
  // fires even though dedup collapses the footprint.
  clean_cfg.host_blob_budget_bytes = 0;
  clean_cfg.dedup = false;
  auto clean = make_engine(EngineKind::kMemQSim, n, clean_cfg);
  clean->run(c);

  fault::arm("blob.write.eio@1");
  EngineConfig cfg = clean_cfg;
  cfg.dedup = true;
  auto engine = make_engine(EngineKind::kMemQSim, n, cfg);
  engine->run(c);
  fault::disarm();
  EXPECT_GE(engine->telemetry().faults_injected, 1u);
  EXPECT_EQ(engine->to_dense().max_abs_diff(clean->to_dense()), 0.0);
}

TEST(PagerDedup, EngineBitIdenticalOnAndOffWithSavings) {
  // An H-wall pushes the whole register through uniform (constant) chunks:
  // dedup-on must produce bit-identical amplitudes while storing fewer
  // physical bytes and skipping modeled H2D transfer for constant chunks.
  constexpr qubit_t n = 8;
  Circuit c(n);
  for (qubit_t q = 0; q < n; ++q) c.h(q);
  c.append(circuit::make_qft(n));

  EngineConfig on_cfg = exact_cfg(4);
  EngineConfig off_cfg = on_cfg;
  off_cfg.dedup = false;
  auto on = make_engine(EngineKind::kMemQSim, n, on_cfg);
  auto off = make_engine(EngineKind::kMemQSim, n, off_cfg);
  on->run(c);
  off->run(c);

  EXPECT_EQ(on->to_dense().max_abs_diff(off->to_dense()), 0.0);
  const EngineTelemetry& t = on->telemetry();
  EXPECT_GT(t.dedup_hits, 0u);
  EXPECT_GT(t.dedup_bytes_saved, 0u);
  EXPECT_GT(t.constant_chunks_stored, 0u);
  // Constant chunks skipped the modeled PCIe link.
  EXPECT_LT(t.h2d_bytes, off->telemetry().h2d_bytes);
  // Logical traffic is unchanged — dedup is a storage-plane property.
  EXPECT_EQ(t.chunk_loads, off->telemetry().chunk_loads);
  EXPECT_EQ(t.chunk_stores, off->telemetry().chunk_stores);
  EXPECT_LE(t.peak_resident_blob_bytes,
            off->telemetry().peak_resident_blob_bytes);
}

TEST(PagerReset, ClearsStateAndRefusesLiveLeases) {
  PagerHarness h(5, exact_cfg(3));
  StatePager::Lease w = h.pager.acquire_write(1);
  w.amps()[0] = {1.0, 0.0};
  EXPECT_THROW(h.pager.reset(), Error);  // live lease
  h.pager.release(std::move(w), true);
  h.pager.reset();
  EXPECT_TRUE(h.pager.is_zero(1));
  EXPECT_FALSE(h.pager.is_zero(0));
}

}  // namespace
}  // namespace memq::core
