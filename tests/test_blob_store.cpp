// BlobStore backends: the RAM backend's in-place contract and the file
// backend's budget cap, spill counters, zero metadata, and region reuse.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/faultpoint.hpp"
#include "compress/chunk_codec.hpp"
#include "core/blob_store.hpp"

namespace memq::core {
namespace {

using compress::ByteBuffer;

// Blobs must carry real codec framing (is_zero answers from the header),
// so build them through a bit-exact ChunkCodec.
ByteBuffer make_blob(double seed, std::size_t n_amps = 16) {
  compress::ChunkCodecConfig cfg;
  cfg.compressor = "null";
  compress::ChunkCodec codec(cfg);
  std::vector<amp_t> amps(n_amps);
  for (std::size_t k = 0; k < n_amps; ++k)
    amps[k] = {seed + static_cast<double>(k), seed - static_cast<double>(k)};
  ByteBuffer out;
  codec.encode(amps, out);
  return out;
}

ByteBuffer make_zero_blob(std::size_t n_amps = 16) {
  compress::ChunkCodecConfig cfg;
  cfg.compressor = "null";
  compress::ChunkCodec codec(cfg);
  std::vector<amp_t> amps(n_amps);
  ByteBuffer out;
  codec.encode(amps, out);
  return out;
}

TEST(RamBlobStore, RoundTripAndInplaceSlot) {
  RamBlobStore store;
  store.resize(3);
  const ByteBuffer a = make_blob(1.0);
  store.write(0, ByteBuffer(a));
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), a);
  EXPECT_EQ(store.size(0), a.size());
  EXPECT_FALSE(store.is_zero(0));
  EXPECT_FALSE(store.tracks_residency());

  // The in-place slot is the stored buffer itself: mutations through it are
  // visible on the next read (the historical encode-in-place path).
  ByteBuffer* slot = store.inplace_slot(1);
  ASSERT_NE(slot, nullptr);
  *slot = make_zero_blob();
  EXPECT_TRUE(store.is_zero(1));

  store.write(2, make_blob(7.0));
  store.swap(0, 2);
  EXPECT_EQ(store.read(2, scratch), a);
}

TEST(FileBlobStore, RoundTripWithinBudget) {
  FileBlobStore store(1 << 20);
  store.resize(4);
  const ByteBuffer a = make_blob(1.0), b = make_blob(2.0);
  store.write(0, ByteBuffer(a));
  store.write(1, ByteBuffer(b));
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), a);
  EXPECT_EQ(store.read(1, scratch), b);
  // Everything fits: write-behind means nothing has touched the file yet.
  const auto st = store.stats();
  EXPECT_EQ(st.spill_writes, 0u);
  EXPECT_EQ(st.spill_reads, 0u);
  EXPECT_EQ(st.resident_bytes, a.size() + b.size());
}

TEST(FileBlobStore, BudgetIsAHardCap) {
  const ByteBuffer probe = make_blob(0.0);
  // Budget fits roughly two blobs; eight live blobs force spilling.
  const std::uint64_t budget = 2 * probe.size() + probe.size() / 2;
  FileBlobStore store(budget);
  store.resize(8);
  std::vector<ByteBuffer> originals;
  for (index_t i = 0; i < 8; ++i) {
    originals.push_back(make_blob(static_cast<double>(i) + 1.0));
    store.write(i, ByteBuffer(originals.back()));
    EXPECT_LE(store.stats().resident_bytes, budget) << "after write " << i;
  }
  ByteBuffer scratch;
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_EQ(store.read(i, scratch), originals[i]) << "blob " << i;
    EXPECT_LE(store.stats().resident_bytes, budget) << "after read " << i;
  }
  const auto st = store.stats();
  EXPECT_LE(st.peak_resident_bytes, budget);
  EXPECT_GT(st.spill_writes, 0u);
  EXPECT_GT(st.spill_reads, 0u);
  EXPECT_EQ(st.spill_bytes_written, st.spill_writes * probe.size());
  EXPECT_EQ(st.spill_bytes_read, st.spill_reads * probe.size());
}

TEST(FileBlobStore, ReadBackPromotesAndKeepsDiskCopyValid) {
  const ByteBuffer probe = make_blob(0.0);
  FileBlobStore store(probe.size());  // exactly one resident blob
  store.resize(3);
  const ByteBuffer a = make_blob(1.0), b = make_blob(2.0), c = make_blob(3.0);
  store.write(0, ByteBuffer(a));
  store.write(1, ByteBuffer(b));  // evicts 0 to disk
  store.write(2, ByteBuffer(c));  // evicts 1 to disk
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), a);  // promoted back, clean
  const auto before = store.stats();
  EXPECT_EQ(store.read(1, scratch), b);  // evicts 0 again — disk copy reused
  // Re-evicting the clean promoted blob must not pay a second file write.
  EXPECT_EQ(store.stats().spill_writes, before.spill_writes);
  EXPECT_EQ(store.read(0, scratch), a);
}

TEST(FileBlobStore, ZeroFlagSurvivesSpill) {
  const ByteBuffer probe = make_blob(0.0);
  FileBlobStore store(probe.size());
  store.resize(3);
  store.write(0, make_zero_blob());
  EXPECT_TRUE(store.is_zero(0));
  EXPECT_FALSE(store.is_zero(1));  // never written: zero-sized, not flagged
  store.write(1, make_blob(4.0));
  store.write(2, make_blob(5.0));  // pushes blob 0 out to disk
  EXPECT_TRUE(store.is_zero(0));   // answered from metadata, no disk read
  const auto reads_before = store.stats().spill_reads;
  EXPECT_TRUE(store.is_zero(0));
  EXPECT_EQ(store.stats().spill_reads, reads_before);
}

TEST(FileBlobStore, SwapExchangesResidentAndSpilled) {
  const ByteBuffer probe = make_blob(0.0);
  FileBlobStore store(probe.size());
  store.resize(2);
  const ByteBuffer a = make_blob(1.0), b = make_blob(2.0);
  store.write(0, ByteBuffer(a));
  store.write(1, ByteBuffer(b));  // 0 spilled, 1 resident
  store.swap(0, 1);
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), b);
  EXPECT_EQ(store.read(1, scratch), a);
  EXPECT_EQ(store.size(0), b.size());
  EXPECT_EQ(store.size(1), a.size());
}

TEST(FileBlobStore, OversizedBlobSpillsImmediately) {
  const ByteBuffer small = make_blob(1.0, 4);
  FileBlobStore store(small.size());
  store.resize(2);
  const ByteBuffer big = make_blob(2.0, 256);  // larger than the whole budget
  ASSERT_GT(big.size(), store.budget_bytes());
  store.write(0, ByteBuffer(big));
  EXPECT_LE(store.stats().resident_bytes, store.budget_bytes());
  EXPECT_GT(store.stats().spill_writes, 0u);
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), big);
  EXPECT_LE(store.stats().resident_bytes, store.budget_bytes());
}

TEST(FileBlobStore, ZeroBudgetKeepsNothingResident) {
  FileBlobStore store(0);
  store.resize(2);
  const ByteBuffer a = make_blob(1.0);
  store.write(0, ByteBuffer(a));
  store.write(1, make_blob(2.0));
  EXPECT_EQ(store.stats().resident_bytes, 0u);
  EXPECT_EQ(store.stats().peak_resident_bytes, 0u);
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), a);
  EXPECT_EQ(store.stats().resident_bytes, 0u);
}

TEST(FileBlobStore, RewriteReusesOrGrowsFileRegion) {
  const ByteBuffer probe = make_blob(0.0, 8);
  FileBlobStore store(probe.size());
  store.resize(2);
  // Cycle a blob through the file at alternating sizes: every read must see
  // the latest bytes regardless of region reallocation.
  for (int round = 0; round < 4; ++round) {
    const std::size_t n_amps = (round % 2 == 0) ? 8 : 64;
    const ByteBuffer v = make_blob(10.0 + round, n_amps);
    store.write(0, ByteBuffer(v));
    store.write(1, make_blob(99.0, 8));  // forces 0 out
    ByteBuffer scratch;
    EXPECT_EQ(store.read(0, scratch), v) << "round " << round;
  }
}

TEST(FileBlobStore, MmapSpillRoundTrips) {
  // Zero budget: every blob goes straight through the mmap'd spill window.
  FileBlobStore store(0, SpillIo::kMmap);
  store.resize(8);
  std::vector<ByteBuffer> originals;
  for (index_t i = 0; i < 8; ++i) {
    originals.push_back(make_blob(static_cast<double>(i) + 1.0,
                                  16 + 8 * static_cast<std::size_t>(i)));
    store.write(i, ByteBuffer(originals.back()));
  }
  EXPECT_TRUE(store.using_mmap());
  store.sync();  // checkpoint barrier: msync must not disturb the data
  ByteBuffer scratch;
  for (index_t i = 0; i < 8; ++i)
    EXPECT_EQ(store.read(i, scratch), originals[i]) << "blob " << i;
  const auto st = store.stats();
  EXPECT_GT(st.spill_writes, 0u);
  EXPECT_GT(st.spill_reads, 0u);
}

TEST(FileBlobStore, MmapGrowthKeepsEarlierBlobsValid) {
  // Force repeated window growth past the initial mapping; bytes written
  // before a munmap/re-mmap cycle must still read back exactly.
  FileBlobStore store(0, SpillIo::kMmap);
  store.resize(4);
  std::vector<ByteBuffer> originals;
  for (index_t i = 0; i < 4; ++i) {
    originals.push_back(make_blob(static_cast<double>(i), 1 << 16));
    store.write(i, ByteBuffer(originals.back()));
  }
  EXPECT_TRUE(store.using_mmap());
  ByteBuffer scratch;
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(store.read(i, scratch), originals[i]) << "blob " << i;
}

TEST(FileBlobStore, MmapFailureDegradesToPreadAndStaysCorrect) {
  fault::arm("blob.mmap.map@1");
  FileBlobStore store(0, SpillIo::kMmap);
  store.resize(4);
  std::vector<ByteBuffer> originals;
  for (index_t i = 0; i < 4; ++i) {
    originals.push_back(make_blob(static_cast<double>(i) + 1.0));
    store.write(i, ByteBuffer(originals.back()));
  }
  // The very first mapping attempt failed: the store must have fallen back
  // to pread/pwrite permanently, with identical round-trip semantics.
  EXPECT_FALSE(store.using_mmap());
  EXPECT_EQ(fault::fires("blob.mmap.map"), 1u);
  ByteBuffer scratch;
  for (index_t i = 0; i < 4; ++i)
    EXPECT_EQ(store.read(i, scratch), originals[i]) << "blob " << i;
  store.sync();  // no mapping: must be a harmless no-op
  fault::disarm();
}

TEST(FileBlobStore, PreadModeNeverMaps) {
  FileBlobStore store(0, SpillIo::kPread);
  store.resize(2);
  const ByteBuffer a = make_blob(1.0);
  store.write(0, ByteBuffer(a));
  store.write(1, make_blob(2.0));
  EXPECT_FALSE(store.using_mmap());
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), a);
}

TEST(FileBlobStore, ReadBeforeWriteIsRejected) {
  FileBlobStore store(1 << 10);
  store.resize(1);
  ByteBuffer scratch;
  EXPECT_THROW((void)store.read(0, scratch), Error);
}

ByteBuffer make_const_blob(double re, double im, std::size_t n_amps = 16) {
  compress::ChunkCodecConfig cfg;
  cfg.compressor = "null";
  compress::ChunkCodec codec(cfg);
  std::vector<amp_t> amps(n_amps, amp_t{re, im});
  ByteBuffer out;
  codec.encode(amps, out);
  return out;
}

TEST(FileBlobStore, FreeBlobReturnsRegionExactlyOnce) {
  // Zero budget: every write goes straight to the file, so a store/free
  // cycle exercises region allocation + donation each round. 1k rounds must
  // not grow the file past the single region the first round allocated.
  FileBlobStore store(0);
  store.resize(2);
  const ByteBuffer v = make_blob(3.0);
  store.write(0, ByteBuffer(v));
  const std::uint64_t one_region = store.stats().file_bytes;
  ASSERT_GT(one_region, 0u);
  for (int round = 0; round < 1000; ++round) {
    store.free_blob(0);
    store.write(0, ByteBuffer(v));
    ASSERT_EQ(store.stats().file_bytes, one_region) << "round " << round;
  }
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), v);
}

TEST(FileBlobStore, DoubleFreeDoesNotDonateRegionTwice) {
  FileBlobStore store(0);
  store.resize(3);
  store.write(0, ByteBuffer(make_blob(1.0)));
  store.free_blob(0);
  store.free_blob(0);  // idempotent: the region must not enter the free
                       // list a second time
  const ByteBuffer a = make_blob(2.0), b = make_blob(3.0);
  store.write(1, ByteBuffer(a));  // takes the donated region
  store.write(2, ByteBuffer(b));  // must get a DIFFERENT region
  ByteBuffer scratch;
  EXPECT_EQ(store.read(1, scratch), a);
  EXPECT_EQ(store.read(2, scratch), b);
}

TEST(FileBlobStore, FreedBlobReadsAsNeverWritten) {
  FileBlobStore store(1 << 10);
  store.resize(1);
  store.write(0, ByteBuffer(make_blob(1.0)));
  store.free_blob(0);
  ByteBuffer scratch;
  EXPECT_THROW((void)store.read(0, scratch), Error);
  EXPECT_EQ(store.size(0), 0u);
}

TEST(BlobStoreConstantFlag, ZeroAndConstantAreDistinguished) {
  RamBlobStore store;
  store.resize(3);
  store.write(0, make_zero_blob());
  store.write(1, make_const_blob(0.25, -0.5));
  store.write(2, make_blob(1.0));
  EXPECT_TRUE(store.is_zero(0));
  EXPECT_TRUE(store.is_constant(0));  // zero is a constant fill
  EXPECT_FALSE(store.is_zero(1));
  EXPECT_TRUE(store.is_constant(1));
  EXPECT_FALSE(store.is_zero(2));
  EXPECT_FALSE(store.is_constant(2));
}

TEST(DedupBlobStore, IdenticalBlobsShareOnePhysicalCopy) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(8);
  const ByteBuffer v = make_blob(4.0);
  for (index_t i = 0; i < 8; ++i) store.write(i, ByteBuffer(v));
  EXPECT_EQ(store.physical_blobs(), 1u);
  ByteBuffer scratch;
  for (index_t i = 0; i < 8; ++i) {
    EXPECT_EQ(store.read(i, scratch), v) << "blob " << i;
    EXPECT_EQ(store.refcount(i), 8u);
    EXPECT_EQ(store.content_id(i), store.content_id(0));
  }
  const auto st = store.stats();
  EXPECT_EQ(st.dedup_hits, 7u);
  EXPECT_EQ(st.dedup_bytes_saved, 7u * v.size());
  EXPECT_EQ(st.cow_breaks, 0u);
  // Physical residency over a RAM inner: one copy, not eight.
  EXPECT_EQ(st.resident_bytes, v.size());
}

TEST(DedupBlobStore, DivergentWriteBreaksShareViaCow) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(3);
  const ByteBuffer shared = make_blob(1.0), fresh = make_blob(9.0);
  for (index_t i = 0; i < 3; ++i) store.write(i, ByteBuffer(shared));
  store.write(1, ByteBuffer(fresh));  // detaches onto its own slot
  EXPECT_EQ(store.physical_blobs(), 2u);
  EXPECT_EQ(store.refcount(0), 2u);
  EXPECT_EQ(store.refcount(1), 1u);
  EXPECT_NE(store.content_id(1), store.content_id(0));
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), shared);  // untouched by 1's rewrite
  EXPECT_EQ(store.read(1, scratch), fresh);
  EXPECT_EQ(store.read(2, scratch), shared);
  EXPECT_EQ(store.stats().cow_breaks, 1u);
}

TEST(DedupBlobStore, ExclusiveOverwriteReindexesContent) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(2);
  store.write(0, make_blob(1.0));
  store.write(0, make_blob(2.0));  // refcount 1: in-place, no CoW
  EXPECT_EQ(store.stats().cow_breaks, 0u);
  EXPECT_EQ(store.physical_blobs(), 1u);
  // The new content must be findable: a second write of the same bytes
  // dedups against the overwritten slot, not the stale pre-overwrite hash.
  store.write(1, make_blob(2.0));
  EXPECT_EQ(store.physical_blobs(), 1u);
  EXPECT_EQ(store.refcount(0), 2u);
  EXPECT_EQ(store.stats().dedup_hits, 1u);
}

TEST(DedupBlobStore, RewriteToSameContentIsStable) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(2);
  const ByteBuffer v = make_blob(5.0);
  store.write(0, ByteBuffer(v));
  store.write(1, ByteBuffer(v));
  const auto before = store.stats();
  store.write(1, ByteBuffer(v));  // re-store of identical content: no-op
  EXPECT_EQ(store.physical_blobs(), 1u);
  EXPECT_EQ(store.refcount(1), 2u);
  EXPECT_EQ(store.stats().dedup_hits, before.dedup_hits);
  EXPECT_EQ(store.stats().cow_breaks, 0u);
}

TEST(DedupBlobStore, DifferentContentNeverShares) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(4);
  for (index_t i = 0; i < 4; ++i)
    store.write(i, make_blob(static_cast<double>(i)));  // same size, all
                                                        // distinct bytes
  EXPECT_EQ(store.physical_blobs(), 4u);
  ByteBuffer scratch;
  for (index_t i = 0; i < 4; ++i) {
    EXPECT_EQ(store.refcount(i), 1u);
    EXPECT_EQ(store.read(i, scratch), make_blob(static_cast<double>(i)));
  }
  EXPECT_EQ(store.stats().dedup_hits, 0u);
}

TEST(DedupBlobStore, FreeBlobDropsOneReference) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(3);
  const ByteBuffer v = make_blob(6.0);
  for (index_t i = 0; i < 3; ++i) store.write(i, ByteBuffer(v));
  store.free_blob(0);
  EXPECT_EQ(store.refcount(1), 2u);
  EXPECT_EQ(store.physical_blobs(), 1u);
  ByteBuffer scratch;
  EXPECT_EQ(store.read(1, scratch), v);
  store.free_blob(1);
  store.free_blob(2);  // last reference: physical slot released
  EXPECT_EQ(store.physical_blobs(), 0u);
  EXPECT_THROW((void)store.read(2, scratch), Error);
  EXPECT_EQ(store.stats().resident_bytes, 0u);
}

TEST(DedupBlobStore, SwapMovesLogicalMappingOnly) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(2);
  const ByteBuffer a = make_blob(1.0), b = make_blob(2.0);
  store.write(0, ByteBuffer(a));
  store.write(1, ByteBuffer(b));
  store.swap(0, 1);
  ByteBuffer scratch;
  EXPECT_EQ(store.read(0, scratch), b);
  EXPECT_EQ(store.read(1, scratch), a);
  EXPECT_EQ(store.size(0), b.size());
}

TEST(DedupBlobStore, MetadataFlagsFollowTheSharedSlot) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(4);
  store.write(0, make_zero_blob());
  store.write(1, make_zero_blob());
  store.write(2, make_const_blob(0.5, 0.5));
  store.write(3, make_const_blob(0.5, 0.5));
  EXPECT_EQ(store.physical_blobs(), 2u);
  EXPECT_TRUE(store.is_zero(0));
  EXPECT_TRUE(store.is_zero(1));
  EXPECT_FALSE(store.is_zero(2));
  EXPECT_TRUE(store.is_constant(2));
  EXPECT_TRUE(store.is_constant(3));
}

TEST(DedupBlobStore, InplaceSlotIsUnsupported) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(1);
  EXPECT_EQ(store.inplace_slot(0), nullptr);
}

TEST(DedupBlobStore, SharedBlobsSpillOnceOverFileInner) {
  // Zero budget: every physical write goes to the file. Eight identical
  // logical blobs must cost ONE spill write and one file region.
  auto inner = std::make_unique<FileBlobStore>(0);
  const FileBlobStore* file = inner.get();
  DedupBlobStore store(std::move(inner));
  store.resize(8);
  const ByteBuffer v = make_blob(7.0);
  for (index_t i = 0; i < 8; ++i) store.write(i, ByteBuffer(v));
  const auto st = store.stats();
  EXPECT_EQ(st.spill_writes, 1u);
  EXPECT_EQ(st.spill_bytes_written, v.size());
  EXPECT_EQ(st.dedup_hits, 7u);
  const std::uint64_t one_region = file->stats().file_bytes;
  ByteBuffer scratch;
  for (index_t i = 0; i < 8; ++i)
    EXPECT_EQ(store.read(i, scratch), v) << "blob " << i;
  // Release all shares: the single region is donated back exactly once and
  // fully reused by the next distinct blob.
  for (index_t i = 0; i < 8; ++i) store.free_blob(i);
  store.write(0, ByteBuffer(make_blob(8.0)));
  EXPECT_EQ(file->stats().file_bytes, one_region);
}

TEST(DedupBlobStore, ReadBeforeWriteIsRejected) {
  DedupBlobStore store(std::make_unique<RamBlobStore>());
  store.resize(1);
  ByteBuffer scratch;
  EXPECT_THROW((void)store.read(0, scratch), Error);
}

}  // namespace
}  // namespace memq::core
