// Smoke tests of the memq CLI binary: every subcommand must run, produce
// the expected markers, and fail cleanly on bad input. Exercises the tool
// the way a user does (fork/exec via std::system).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

namespace fs = std::filesystem;

fs::path cli_path() {
  for (const fs::path& p : {fs::path{"../tools/memq"}, fs::path{"tools/memq"},
                           fs::path{"build/tools/memq"},
                           fs::path{"/root/repo/build/tools/memq"}}) {
    if (fs::exists(p)) return fs::absolute(p);
  }
  return {};
}

/// Runs the CLI, returning {exit code, stdout+stderr}.
std::pair<int, std::string> run_cli(const std::string& args) {
  const fs::path cli = cli_path();
  if (cli.empty()) return {-1, "memq binary not found"};
  const std::string out_file =
      (fs::temp_directory_path() / "memq_cli_out.txt").string();
  const std::string cmd =
      cli.string() + " " + args + " > " + out_file + " 2>&1";
  const int rc = std::system(cmd.c_str());
  std::ifstream in(out_file);
  std::string output((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
  std::remove(out_file.c_str());
  return {WEXITSTATUS(rc), output};
}

TEST(CliSmoke, Info) {
  const auto [rc, out] = run_cli("info");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("szq"), std::string::npos);
  EXPECT_NE(out.find("memqsim"), std::string::npos);
}

TEST(CliSmoke, WorkloadExportAndRun) {
  const std::string qasm =
      (fs::temp_directory_path() / "memq_cli_ghz.qasm").string();
  {
    const auto [rc, out] =
        run_cli("workload ghz --qubits 8 --stats --out " + qasm);
    ASSERT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("8 qubits"), std::string::npos);
    EXPECT_NE(out.find("gates/codec-pass"), std::string::npos);
  }
  {
    const auto [rc, out] = run_cli("run " + qasm +
                                   " --shots 50 --expect XXXXXXXX "
                                   "--marginal 0,7 --chunk-qubits 4");
    ASSERT_EQ(rc, 0) << out;
    EXPECT_NE(out.find("<XXXXXXXX>"), std::string::npos);
    EXPECT_NE(out.find("marginal over {0,7}"), std::string::npos);
    EXPECT_NE(out.find("peak state memory"), std::string::npos);
  }
  std::remove(qasm.c_str());
}

TEST(CliSmoke, RunWithCheckpointRoundTrip) {
  const std::string qasm =
      (fs::temp_directory_path() / "memq_cli_w.qasm").string();
  const std::string ckpt =
      (fs::temp_directory_path() / "memq_cli_w.ckpt").string();
  ASSERT_EQ(run_cli("workload w --qubits 6 --out " + qasm).first, 0);
  ASSERT_EQ(run_cli("run " + qasm + " --shots 0 --chunk-qubits 3 "
                    "--checkpoint " + ckpt).first, 0);
  // Restoring and "running" an empty continuation must succeed.
  const std::string empty_qasm =
      (fs::temp_directory_path() / "memq_cli_empty.qasm").string();
  {
    std::ofstream f(empty_qasm);
    f << "OPENQASM 2.0;\nqreg q[6];\n";
  }
  const auto [rc, out] = run_cli("run " + empty_qasm +
                                 " --shots 20 --chunk-qubits 3 --restore " +
                                 ckpt);
  EXPECT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("restored state"), std::string::npos);
  std::remove(qasm.c_str());
  std::remove(ckpt.c_str());
  std::remove(empty_qasm.c_str());
}

TEST(CliSmoke, TransferTable) {
  const auto [rc, out] = run_cli("transfer --qubits 16");
  ASSERT_EQ(rc, 0) << out;
  EXPECT_NE(out.find("async-per-element"), std::string::npos);
  EXPECT_NE(out.find("staged-buffer"), std::string::npos);
}

TEST(CliSmoke, ErrorsAreClean) {
  EXPECT_NE(run_cli("").first, 0);
  EXPECT_NE(run_cli("frobnicate").first, 0);
  EXPECT_NE(run_cli("run /nonexistent.qasm").first, 0);
  EXPECT_NE(run_cli("workload bogus --qubits 4").first, 0);
}

}  // namespace
