// Observability plane: the tracer must emit valid Chrome trace-event JSON
// with balanced B/E spans per track, monotonic modeled-device lanes, and
// deterministic span *content* across codec thread counts; the per-stage
// report must telescope exactly (stage counter deltas sum to the run total);
// and PhaseTimers' coordinator-only contract must hold under TSan.
#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <future>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"

namespace memq {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader — just enough to validate the trace file. Parses
// objects/arrays/strings/numbers/bools into a variant tree and throws on any
// syntax error, so "the file is valid JSON" is checked for real.
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  const JsonValue* find(const std::string& key) const {
    const auto it = fields.find(key);
    return it == fields.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json error at byte " + std::to_string(pos_) +
                             ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string_value();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null_value();
    return number();
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      JsonValue key = string_value();
      skip_ws();
      expect(':');
      v.fields.emplace(key.str, value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    expect('"');
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': v.str += '"'; break;
          case '\\': v.str += '\\'; break;
          case '/': v.str += '/'; break;
          case 'n': v.str += '\n'; break;
          case 'r': v.str += '\r'; break;
          case 't': v.str += '\t'; break;
          case 'b': v.str += '\b'; break;
          case 'f': v.str += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            v.str += text_.substr(pos_ - 2, 6);  // keep raw; fine for tests
            pos_ += 4;
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        v.str += c;
      }
    }
  }

  JsonValue boolean() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue null_value() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    JsonValue v;
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  std::string text_;
  std::size_t pos_ = 0;
};

JsonValue load_trace(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return JsonParser(ss.str()).parse();
}

std::string trace_path(const char* name) {
  return ::testing::TempDir() + name;
}

core::EngineConfig traced_config(std::uint32_t codec_threads,
                                 bool with_cache = true) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = 5;
  cfg.codec.bound = 1e-6;
  cfg.codec_threads = codec_threads;
  if (with_cache) cfg.cache_budget_bytes = 8 * (index_t{1} << 5) * kAmpBytes;
  return cfg;
}

/// Runs a small memqsim workload while the tracer captures to `path`.
/// Returns the number of events flushed.
std::size_t run_traced(const std::string& path, std::uint32_t codec_threads,
                       bool with_cache = true) {
  const circuit::Circuit c = circuit::make_workload("qft", 10, 7);
  trace::start(path);
  {
    auto engine = core::make_engine(core::EngineKind::kMemQSim, 10,
                                    traced_config(codec_threads, with_cache));
    engine->run(c);
  }  // destroy first: joins codec workers, settling async write-backs
  return trace::stop();
}

// ---------------------------------------------------------------------------
// Disabled mode: no buffers, no file, stop() is a no-op.
// ---------------------------------------------------------------------------

TEST(TraceDisabled, EmitsNothing) {
  ASSERT_FALSE(trace::enabled());
  const circuit::Circuit c = circuit::make_workload("qft", 8, 7);
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, 8, traced_config(2));
  engine->run(c);
  EXPECT_FALSE(trace::enabled());
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_EQ(trace::stop(), 0u);  // no capture -> no-op, writes no file
}

TEST(TraceDisabled, StartWhileCapturingThrows) {
  const std::string path = trace_path("trace_twice.json");
  trace::start(path);
  EXPECT_THROW(trace::start(path), std::invalid_argument);
  trace::stop();
}

// ---------------------------------------------------------------------------
// Capture: valid JSON, >= 4 subsystems, balanced spans, monotonic lanes.
// ---------------------------------------------------------------------------

TEST(TraceCapture, ValidJsonWithBalancedSpansAcrossSubsystems) {
  const std::string path = trace_path("trace_capture.json");
  const std::size_t n_events = run_traced(path, 2);
  EXPECT_GT(n_events, 0u);

  const JsonValue root = load_trace(path);
  const JsonValue* events = root.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);

  std::set<std::string> cats;
  std::map<std::pair<double, double>, int> depth;  // (pid,tid) -> open spans
  std::map<double, double> lane_last_ts;           // pid-1 lane -> last ts
  std::size_t counted = 0;
  for (const JsonValue& e : events->items) {
    ASSERT_EQ(e.kind, JsonValue::Kind::kObject);
    const JsonValue* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->str == "M") continue;  // metadata carries no cat/ts
    ++counted;
    const double pid = e.find("pid")->number;
    const double tid = e.find("tid")->number;
    if (ph->str != "E") {
      ASSERT_NE(e.find("cat"), nullptr);
      cats.insert(e.find("cat")->str);
    }
    const std::pair<double, double> track{pid, tid};
    if (ph->str == "B") ++depth[track];
    if (ph->str == "E") {
      --depth[track];
      EXPECT_GE(depth[track], 0) << "E without matching B";
    }
    if (pid == 1.0) {
      EXPECT_EQ(ph->str, "X") << "modeled lanes hold complete events only";
      const double ts = e.find("ts")->number;
      const auto it = lane_last_ts.find(tid);
      if (it != lane_last_ts.end()) {
        EXPECT_GE(ts, it->second) << "lane " << tid << " went backwards";
      }
      lane_last_ts[tid] = ts;
      EXPECT_GE(e.find("dur")->number, 0.0);
    }
  }
  EXPECT_EQ(counted, n_events);
  for (const auto& [track, open] : depth)
    EXPECT_EQ(open, 0) << "unbalanced B/E on pid " << track.first << " tid "
                       << track.second;

  // The whole hot path shows up: stage + pager + codec + cache + device.
  EXPECT_GE(cats.size(), 4u);
  for (const char* want : {"stage", "pager", "codec", "cache", "device"})
    EXPECT_TRUE(cats.count(want)) << "missing subsystem: " << want;
}

// ---------------------------------------------------------------------------
// Determinism in content: the (ph, cat, name, args) multiset must not depend
// on the codec thread count. Timestamps, tids, and the scheduling-dependent
// "stall"/"spill" categories are excluded — everything else is driven by the
// coordinator or by chunk content, which the determinism contract pins. The
// cache stays off here: Belady admission consults the structural pipeline
// window, so cache *placement* (unlike results) legitimately varies with
// codec_threads.
// ---------------------------------------------------------------------------

std::multiset<std::string> content_multiset(const JsonValue& root) {
  std::multiset<std::string> out;
  const JsonValue* events = root.find("traceEvents");
  for (const JsonValue& e : events->items) {
    const std::string& ph = e.find("ph")->str;
    if (ph == "M" || ph == "E") continue;
    const std::string& cat = e.find("cat")->str;
    if (cat == "stall" || cat == "spill") continue;
    std::string key = ph + "|" + cat + "|" + e.find("name")->str;
    if (const JsonValue* args = e.find("args")) {
      for (const auto& [k, v] : args->fields) {
        key += "|" + k + "=";
        key += v.kind == JsonValue::Kind::kString ? v.str
                                                  : std::to_string(v.number);
      }
    }
    out.insert(std::move(key));
  }
  return out;
}

TEST(TraceCapture, SpanContentDeterministicAcrossCodecThreads) {
  const std::string serial_path = trace_path("trace_serial.json");
  const std::string pooled_path = trace_path("trace_pooled.json");
  run_traced(serial_path, 1, /*with_cache=*/false);
  run_traced(pooled_path, 4, /*with_cache=*/false);

  const auto serial = content_multiset(load_trace(serial_path));
  const auto pooled = content_multiset(load_trace(pooled_path));
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, pooled);
}

// ---------------------------------------------------------------------------
// Stage report: counter deltas are telescoped snapshots, so per-stage rows
// must sum EXACTLY to the run total, and the total must match telemetry.
// ---------------------------------------------------------------------------

TEST(StageReport, CounterRowsSumExactlyToTotal) {
  const circuit::Circuit c = circuit::make_workload("random", 10, 11);
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, 10, traced_config(2));
  engine->run(c);

  const core::StageReport* rep = engine->stage_report();
  ASSERT_NE(rep, nullptr);
  ASSERT_FALSE(rep->rows.empty());

  core::StageRow sum;
  for (const core::StageRow& row : rep->rows) {
    sum.chunk_loads += row.chunk_loads;
    sum.chunk_stores += row.chunk_stores;
    sum.cache_hits += row.cache_hits;
    sum.cache_misses += row.cache_misses;
    sum.cache_evictions += row.cache_evictions;
    sum.cache_writebacks += row.cache_writebacks;
    sum.spill_writes += row.spill_writes;
    sum.spill_reads += row.spill_reads;
    sum.h2d_bytes += row.h2d_bytes;
    sum.d2h_bytes += row.d2h_bytes;
    sum.kernel_launches += row.kernel_launches;
    sum.zero_chunks_skipped += row.zero_chunks_skipped;
  }
  EXPECT_EQ(sum.chunk_loads, rep->total.chunk_loads);
  EXPECT_EQ(sum.chunk_stores, rep->total.chunk_stores);
  EXPECT_EQ(sum.cache_hits, rep->total.cache_hits);
  EXPECT_EQ(sum.cache_misses, rep->total.cache_misses);
  EXPECT_EQ(sum.cache_evictions, rep->total.cache_evictions);
  EXPECT_EQ(sum.cache_writebacks, rep->total.cache_writebacks);
  EXPECT_EQ(sum.spill_writes, rep->total.spill_writes);
  EXPECT_EQ(sum.spill_reads, rep->total.spill_reads);
  EXPECT_EQ(sum.h2d_bytes, rep->total.h2d_bytes);
  EXPECT_EQ(sum.d2h_bytes, rep->total.d2h_bytes);
  EXPECT_EQ(sum.kernel_launches, rep->total.kernel_launches);
  EXPECT_EQ(sum.zero_chunks_skipped, rep->total.zero_chunks_skipped);

  // The totals row is the whole run, so it must agree with telemetry.
  const core::EngineTelemetry& t = engine->telemetry();
  EXPECT_EQ(rep->total.chunk_loads, t.chunk_loads);
  EXPECT_EQ(rep->total.chunk_stores, t.chunk_stores);
  EXPECT_EQ(rep->total.cache_hits, t.cache_hits);
  EXPECT_EQ(rep->total.cache_misses, t.cache_misses);
  EXPECT_EQ(rep->total.kernel_launches, t.kernel_launches);

  // Stage gate counts cover the circuit.
  std::size_t gates = 0;
  for (const core::StageRow& row : rep->rows) gates += row.gates;
  EXPECT_EQ(gates, c.size());
  EXPECT_EQ(rep->total.gates, c.size());

  // Seconds rows are a lower bound on the total (offline partitioning and
  // the final device drain live outside the stage loop).
  double modeled = 0.0;
  for (const core::StageRow& row : rep->rows) modeled += row.modeled_seconds;
  EXPECT_LE(modeled, rep->total.modeled_seconds + 1e-9);
  EXPECT_GE(rep->total.device_idle_seconds, 0.0);
}

TEST(StageReport, DenseEngineHasNone) {
  auto engine = core::make_engine(core::EngineKind::kDense, 4, {});
  EXPECT_EQ(engine->stage_report(), nullptr);
}

// ---------------------------------------------------------------------------
// Satellite: PhaseTimers threading contract. Workers never call add() on a
// shared PhaseTimers — they time locally and the coordinator merges either
// raw seconds handed through a future (codec-pool pattern) or a private
// PhaseTimers via merge(). Run under TSan in CI, this is the regression
// guard for the cpu_phases audit.
// ---------------------------------------------------------------------------

TEST(PhaseTimersThreading, FutureHandoffAndMergeAreRaceFree) {
  constexpr int kWorkers = 4;
  constexpr int kItems = 64;

  PhaseTimers coordinator;
  std::vector<std::future<double>> handed;
  handed.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    handed.push_back(std::async(std::launch::async, [] {
      double s = 0.0;
      for (int i = 0; i < kItems; ++i) s += 0.001;
      return s;  // seconds cross the thread boundary via the future
    }));
  }
  for (auto& f : handed) coordinator.add("decompress", f.get());

  std::vector<std::future<PhaseTimers>> merged;
  merged.reserve(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    merged.push_back(std::async(std::launch::async, [] {
      PhaseTimers local;  // worker-private, never shared while hot
      for (int i = 0; i < kItems; ++i) local.add("recompress", 0.001);
      return local;
    }));
  }
  for (auto& f : merged) {
    const PhaseTimers local = f.get();
    coordinator.merge(local);
  }

  EXPECT_NEAR(coordinator.get("decompress"), kWorkers * kItems * 0.001, 1e-9);
  EXPECT_NEAR(coordinator.get("recompress"), kWorkers * kItems * 0.001, 1e-9);
}

TEST(PhaseTimersThreading, EngineCpuPhasesConsistentWithPooledCodec) {
  // End-to-end regression: a pooled-codec run's cpu_phases must be finite,
  // non-negative, and include both codec phases. Under TSan this drives the
  // real worker->future->coordinator handoff in the engine.
  const circuit::Circuit c = circuit::make_workload("qft", 9, 3);
  auto engine =
      core::make_engine(core::EngineKind::kMemQSim, 9, traced_config(4));
  engine->run(c);
  const core::EngineTelemetry& t = engine->telemetry();
  EXPECT_GT(t.cpu_phases.get("decompress"), 0.0);
  EXPECT_GT(t.cpu_phases.get("recompress"), 0.0);
  EXPECT_GE(t.cpu_phases.total(), t.cpu_phases.get("decompress"));
}

}  // namespace
}  // namespace memq
