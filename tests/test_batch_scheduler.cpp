// Batched throughput mode (ISSUE 10): the fork-tree scheduler's contracts.
// K = 1 is literally a serial run; member windows survive K > chunks-per-
// member geometry; the divergence-point fan-out CoW-shares chunks without
// ever leaking one member's amplitudes into another; member ordering and
// the whole schedule are deterministic; and concurrent batches on separate
// engines cannot clobber each other's cache plans (SweepPlanGuard is
// engine-scoped) or counters (ChunkCache::reset_stats is instance-scoped).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "core/batch_scheduler.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

// Null codec throughout: lossless, so a batch member and its serial run are
// bit-identical regardless of how the cache changes round-trip counts.
EngineConfig batch_cfg(std::uint32_t k, qubit_t chunk_qubits,
                       std::uint64_t cache_chunks = 0) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.compressor = "null";
  cfg.cache_budget_bytes = cache_chunks * (sizeof(amp_t) << chunk_qubits);
  cfg.batch_size = k;
  return cfg;
}

// The serial oracle arm for member m: a fresh engine with seed + m, exactly
// what run_batch_serial does per member.
sv::StateVector serial_dense(qubit_t n, const EngineConfig& cfg,
                             const circuit::Circuit& c, std::uint32_t m) {
  EngineConfig one = cfg;
  one.batch_size = 1;
  one.seed = cfg.seed + m;
  auto engine = make_engine(EngineKind::kMemQSim, n, one);
  engine->run(c);
  return engine->to_dense();
}

// A shared GHZ prefix, then a member-specific rotation: every plan agrees
// until the divergence point, so the fork tree shares the prefix and fans
// out once.
std::vector<circuit::Circuit> diverging_members(qubit_t n, std::uint32_t k) {
  std::vector<circuit::Circuit> members;
  for (std::uint32_t m = 0; m < k; ++m) {
    circuit::Circuit c = circuit::make_ghz(n);
    c.rz(0, 0.1 + 0.2 * static_cast<double>(m));
    c.h(1);
    members.push_back(std::move(c));
  }
  return members;
}

TEST(BatchScheduler, KOneIsBitIdenticalToSerial) {
  const qubit_t n = 6;
  const EngineConfig cfg = batch_cfg(1, 3);
  const auto circ = circuit::make_random_circuit(n, 5, 31, true);

  BatchScheduler batch(n, cfg);
  batch.run({circ});

  EXPECT_EQ(batch.member_dense(0).max_abs_diff(serial_dense(n, cfg, circ, 0)),
            0.0);
  const BatchStats& s = batch.stats();
  EXPECT_EQ(s.members, 1u);
  EXPECT_EQ(s.member_index_qubits, 0);
  EXPECT_EQ(s.clone_chunks, 0u);
  EXPECT_EQ(s.executed_stages, s.total_member_stages)
      << "K = 1 has nothing to share";
  EXPECT_EQ(s.shared_stages, 0u);
}

TEST(BatchScheduler, MoreMembersThanChunksPerMember) {
  // span = 2 chunks per member, K = 8 members: the member-index qubits
  // dominate the chunk index, so any window-arithmetic slip corrupts a
  // sibling. With a single non-local qubit every member plan is ONE pair
  // stage, so divergent members fork at depth 0 — the whole batch is clone
  // fan-out plus per-member solo stages, the worst case for the window
  // arithmetic.
  const qubit_t n = 5;
  const EngineConfig cfg = batch_cfg(8, 4);
  const auto members = diverging_members(n, 8);

  BatchScheduler batch(n, cfg);
  batch.run(members);

  ASSERT_EQ(batch.member_span(), 2u);
  for (std::uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(batch.member_dense(m).max_abs_diff(
                  serial_dense(n, cfg, members[m], m)),
              0.0)
        << "member " << m << " diverged from its serial run";
  EXPECT_GT(batch.stats().clone_chunks, 0u)
      << "a depth-0 fork must fan the initial state out to every subgroup";

  // Identical members (shots mode) at the same geometry: the fork tree
  // degenerates to one representative executing everything, so sharing is
  // total even though K is 4x the chunks per member.
  BatchScheduler shots(n, cfg);
  shots.run(std::vector<circuit::Circuit>(8, members[0]));
  EXPECT_GT(shots.stats().shared_stages, 0u);
  EXPECT_EQ(shots.stats().executed_stages,
            shots.stats().total_member_stages / 8);
  for (std::uint32_t m = 0; m < 8; ++m)
    EXPECT_EQ(shots.member_dense(m).max_abs_diff(
                  serial_dense(n, cfg, members[0], m)),
              0.0)
        << "shots member " << m;
}

TEST(BatchScheduler, DivergencePointFanOutSharesChunksUnderDedup) {
  // The fan-out clones byte-identical blobs, so with dedup on the members'
  // shared prefix must coalesce onto one physical copy (dedup hits), and
  // the post-divergence writes must split the shares WITHOUT corrupting any
  // sibling — every member still bit-identical to its own serial run.
  const qubit_t n = 7;
  EngineConfig cfg = batch_cfg(4, 4, /*cache_chunks=*/4);
  ASSERT_TRUE(cfg.dedup);
  const auto members = diverging_members(n, 4);

  BatchScheduler batch(n, cfg);
  batch.run(members);

  for (std::uint32_t m = 0; m < 4; ++m)
    EXPECT_EQ(batch.member_dense(m).max_abs_diff(
                  serial_dense(n, cfg, members[m], m)),
              0.0)
        << "member " << m;
  EXPECT_GT(batch.stats().clone_chunks, 0u);
  EXPECT_GT(batch.engine().store().blob_store().stats().dedup_hits, 0u)
      << "fan-out clones of identical prefixes must share physical blobs";
}

TEST(BatchScheduler, ScheduleAndMemberOrderingAreDeterministic) {
  const qubit_t n = 6;
  const EngineConfig cfg = batch_cfg(4, 3, /*cache_chunks=*/4);
  const auto members = diverging_members(n, 4);

  auto run_once = [&] {
    BatchScheduler batch(n, cfg);
    batch.run(members);
    std::vector<std::map<index_t, std::uint64_t>> counts;
    for (std::uint32_t m = 0; m < 4; ++m)
      counts.push_back(batch.member_counts(m, 64));
    return std::make_pair(counts, batch.stats());
  };
  const auto [counts_a, stats_a] = run_once();
  const auto [counts_b, stats_b] = run_once();
  EXPECT_EQ(counts_a, counts_b);
  EXPECT_EQ(stats_a.executed_stages, stats_b.executed_stages);
  EXPECT_EQ(stats_a.shared_stages, stats_b.shared_stages);
  EXPECT_EQ(stats_a.clone_chunks, stats_b.clone_chunks);
}

TEST(BatchScheduler, MemberCountsMatchSerialSeedConvention) {
  // member_counts(m, shots) samples with Prng(seed + m) — exactly the
  // generator run_batch_serial's per-member engine uses, so the counts are
  // bit-identical, not just statistically close.
  const qubit_t n = 6;
  const EngineConfig cfg = batch_cfg(4, 3);
  const auto members = diverging_members(n, 4);

  BatchScheduler batch(n, cfg);
  batch.run(members);
  const auto serial =
      run_batch_serial(EngineKind::kMemQSim, n, cfg, members, 128);
  ASSERT_EQ(serial.size(), 4u);
  for (std::uint32_t m = 0; m < 4; ++m)
    EXPECT_EQ(batch.member_counts(m, 128), serial[m]) << "member " << m;
}

TEST(BatchScheduler, ConcurrentBatchesDoNotClobberEachOther) {
  // Two schedulers on two threads, both with caches: SweepPlanGuard and the
  // Belady plan are engine-scoped, so neither batch can install a plan into
  // (or reset the counters of) the other's cache. Run under TSan in CI.
  const qubit_t n = 6;
  const EngineConfig cfg = batch_cfg(4, 3, /*cache_chunks=*/4);
  const auto members = diverging_members(n, 4);

  std::vector<sv::StateVector> dense_a, dense_b;
  auto worker = [&](std::vector<sv::StateVector>& out) {
    BatchScheduler batch(n, cfg);
    batch.run(members);
    for (std::uint32_t m = 0; m < 4; ++m)
      out.push_back(batch.member_dense(m));
  };
  std::thread ta(worker, std::ref(dense_a));
  std::thread tb(worker, std::ref(dense_b));
  ta.join();
  tb.join();

  for (std::uint32_t m = 0; m < 4; ++m) {
    const sv::StateVector expected = serial_dense(n, cfg, members[m], m);
    EXPECT_EQ(dense_a[m].max_abs_diff(expected), 0.0) << "batch A member "
                                                      << m;
    EXPECT_EQ(dense_b[m].max_abs_diff(expected), 0.0) << "batch B member "
                                                      << m;
  }
}

TEST(BatchScheduler, SiblingEngineResetLeavesCacheStatsAlone) {
  // ChunkCache::reset_stats is instance-scoped (per-engine baselines over
  // shared registry cells): resetting engine A must not zero B's view or
  // disturb B's state.
  const qubit_t n = 6;
  EngineConfig cfg = batch_cfg(1, 3, /*cache_chunks=*/4);
  cfg.batch_size = 1;
  const auto circ = circuit::make_random_circuit(n, 5, 77, true);

  auto a = make_engine(EngineKind::kMemQSim, n, cfg);
  auto b = make_engine(EngineKind::kMemQSim, n, cfg);
  a->run(circ);
  b->run(circ);
  const auto before = b->to_dense();
  const std::uint64_t b_hits = b->telemetry().cache_hits;
  EXPECT_GT(b_hits + b->telemetry().cache_misses, 0u);

  a->reset();  // re-baselines A's cache counters only
  EXPECT_EQ(b->telemetry().cache_hits, b_hits);
  EXPECT_EQ(b->to_dense().max_abs_diff(before), 0.0);
}

TEST(BatchScheduler, RejectsNonUnitaryMembersAndLayoutOpts) {
  const qubit_t n = 5;
  circuit::Circuit measured(n);
  measured.h(0).measure(0);
  BatchScheduler batch(n, batch_cfg(1, 3));
  EXPECT_THROW(batch.run({measured}), Error)
      << "measure collapses one window against the others — must reject";

  EngineConfig bad = batch_cfg(2, 3);
  bad.optimize_layout = true;
  EXPECT_THROW(BatchScheduler(n, bad), Error);
  bad = batch_cfg(2, 3);
  bad.elide_swaps = true;
  EXPECT_THROW(BatchScheduler(n, bad), Error);
}

TEST(BatchScheduler, ExpandMembersModes) {
  const qubit_t n = 4;
  circuit::Circuit base(n);
  base.h(0).rz(1, 0.8).cx(0, 1);

  EngineConfig cfg = batch_cfg(4, 2);
  cfg.batch_mode = BatchMode::kSweep;
  const auto sweep = BatchScheduler::expand_members(base, cfg, {});
  ASSERT_EQ(sweep.size(), 4u);
  // Member K - 1 is the base circuit (scale (m + 1) / K = 1); earlier
  // members scale the rotation down.
  EXPECT_EQ(sweep[3][1].params[0], 0.8);
  EXPECT_EQ(sweep[0][1].params[0], 0.8 * (1.0 / 4.0));

  cfg.batch_mode = BatchMode::kTrajectories;
  circuit::NoiseModel noise;
  noise.depolarizing_1q = 0.3;
  const auto ta = BatchScheduler::expand_members(base, cfg, noise);
  const auto tb = BatchScheduler::expand_members(base, cfg, noise);
  ASSERT_EQ(ta.size(), 4u);
  for (std::size_t m = 0; m < 4; ++m) {
    ASSERT_EQ(ta[m].size(), tb[m].size()) << "trajectories must be "
                                             "deterministic in the seed";
    for (std::size_t g = 0; g < ta[m].size(); ++g)
      EXPECT_EQ(ta[m][g], tb[m][g]);
  }
}

}  // namespace
}  // namespace memq::core
