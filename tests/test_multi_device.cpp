// Multi-accelerator sharding: correctness is device_count-invariant and the
// modeled device wait shrinks as work fans out.
#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "core/engine.hpp"

namespace memq::core {
namespace {

EngineConfig base_cfg(std::uint32_t devices) {
  EngineConfig cfg;
  cfg.chunk_qubits = 4;
  cfg.codec.bound = 1e-9;
  cfg.device_count = devices;
  return cfg;
}

class DeviceCountSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DeviceCountSweep, MatchesDenseOracle) {
  const std::uint32_t devices = GetParam();
  const circuit::Circuit c = circuit::make_random_circuit(8, 6, 77);
  auto engine = make_engine(EngineKind::kMemQSim, 8, base_cfg(devices));
  engine->run(c);
  auto dense = make_engine(EngineKind::kDense, 8, base_cfg(1));
  dense->run(c);
  EXPECT_LT(engine->to_dense().max_abs_diff(dense->to_dense()), 1e-5);
}

INSTANTIATE_TEST_SUITE_P(OneToEight, DeviceCountSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(MultiDevice, AggregatesTelemetryAcrossDevices) {
  const circuit::Circuit c = circuit::make_qft(8);
  auto one = make_engine(EngineKind::kMemQSim, 8, base_cfg(1));
  auto four = make_engine(EngineKind::kMemQSim, 8, base_cfg(4));
  one->run(c);
  four->run(c);
  // Same total traffic and kernels, regardless of sharding.
  EXPECT_EQ(one->telemetry().h2d_bytes, four->telemetry().h2d_bytes);
  EXPECT_EQ(one->telemetry().kernel_launches,
            four->telemetry().kernel_launches);
  // Four devices hold four times the buffer memory.
  EXPECT_EQ(four->telemetry().peak_device_bytes,
            4 * one->telemetry().peak_device_bytes);
}

TEST(MultiDevice, ShardingReducesDeviceWait) {
  // On a deliberately slow device the single-accelerator run stalls the
  // host; fanning out across 4 devices divides the per-device queue depth.
  // The null codec keeps the CPU out of the way so the device is the
  // bottleneck being measured.
  EngineConfig slow1 = base_cfg(1);
  slow1.chunk_qubits = 9;  // big chunks: device work per item >> codec work
  slow1.codec.compressor = "null";
  slow1.device.gate_kernel_throughput = 1e7;
  slow1.device.h2d_bandwidth = 1e8;
  slow1.device.d2h_bandwidth = 1e8;
  EngineConfig slow4 = slow1;
  slow4.device_count = 4;

  const circuit::Circuit c = circuit::make_random_circuit(14, 6, 5);
  auto e1 = make_engine(EngineKind::kMemQSim, 14, slow1);
  auto e4 = make_engine(EngineKind::kMemQSim, 14, slow4);
  e1->run(c);
  e4->run(c);

  const auto wait = [](const Engine& e, const EngineConfig& cfg) {
    return std::max(0.0, e.telemetry().modeled_total_seconds -
                             e.telemetry().cpu_phases.total() /
                                 cfg.cpu_codec_workers);
  };
  const double w1 = wait(*e1, slow1);
  const double w4 = wait(*e4, slow4);
  EXPECT_GT(w1, 0.0);
  EXPECT_LT(w4, w1 * 0.5);
  // And the result is still right.
  EXPECT_LT(e1->to_dense().max_abs_diff(e4->to_dense()), 1e-9);
}

TEST(MultiDevice, ResetClearsAllDevices) {
  auto engine = make_engine(EngineKind::kMemQSim, 8, base_cfg(3));
  engine->run(circuit::make_qft(8));
  engine->reset();
  EXPECT_EQ(engine->telemetry().kernel_launches, 0u);
  EXPECT_DOUBLE_EQ(engine->telemetry().modeled_total_seconds, 0.0);
  engine->run(circuit::make_ghz(8));
  EXPECT_NEAR(engine->norm(), 1.0, 1e-6);
}

TEST(MultiDevice, ZeroDevicesRejected) {
  EngineConfig cfg = base_cfg(0);
  EXPECT_THROW(make_engine(EngineKind::kMemQSim, 6, cfg), Error);
}

}  // namespace
}  // namespace memq::core
