// Trotterized Heisenberg evolution: physics invariants through the full
// stack (energy conservation, magnetization conservation, domain-wall
// spreading).
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/workloads.hpp"
#include "core/engine.hpp"
#include "core/observables.hpp"

namespace memq::circuit {
namespace {

core::PauliSum heisenberg_hamiltonian(qubit_t n, double j) {
  core::PauliSum h;
  for (qubit_t q = 0; q + 1 < n; ++q) {
    for (const char pauli : {'X', 'Y', 'Z'}) {
      std::string ops(n, 'I');
      ops[q] = pauli;
      ops[q + 1] = pauli;
      h.terms.push_back({j, std::move(ops)});
    }
  }
  return h;
}

core::EngineConfig cfg_of(qubit_t chunk) {
  core::EngineConfig cfg;
  cfg.chunk_qubits = chunk;
  cfg.codec.bound = 1e-9;
  return cfg;
}

TEST(Trotter, MatchesDenseOracle) {
  constexpr qubit_t n = 7;
  const Circuit c = make_trotter_heisenberg(n, 3, 0.15);
  auto memq = core::make_engine(core::EngineKind::kMemQSim, n, cfg_of(3));
  auto dense = core::make_engine(core::EngineKind::kDense, n, cfg_of(3));
  // Start from a domain wall |1110000>.
  Circuit prep(n);
  prep.x(0).x(1).x(2);
  memq->run(prep);
  dense->run(prep);
  memq->run(c);
  dense->run(c);
  EXPECT_LT(memq->to_dense().max_abs_diff(dense->to_dense()), 1e-5);
}

TEST(Trotter, ConservesEnergyApproximately) {
  // H commutes with exact evolution; first-order Trotter drifts O(dt^2) per
  // step. With dt = 0.05 over 8 steps the drift stays small.
  constexpr qubit_t n = 6;
  const auto h = heisenberg_hamiltonian(n, 1.0);
  Circuit prep(n);
  prep.x(1).x(3);  // Neel-ish initial product state

  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg_of(3));
  engine->run(prep);
  const double e0 = core::expectation(*engine, h);
  engine->run(make_trotter_heisenberg(n, 8, 0.05));
  const double e1 = core::expectation(*engine, h);
  EXPECT_NEAR(e1, e0, 0.05 * std::fabs(e0) + 0.05);
}

TEST(Trotter, ConservesTotalMagnetization) {
  // [H, sum Z_q] = 0 exactly, and every Trotter factor commutes with it
  // too, so sum <Z_q> is conserved to numerical precision.
  constexpr qubit_t n = 6;
  Circuit prep(n);
  prep.x(0).x(4);
  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg_of(3));
  engine->run(prep);
  const auto total_z = [&] {
    double s = 0;
    for (qubit_t q = 0; q < n; ++q) {
      std::string ops(n, 'I');
      ops[q] = 'Z';
      s += engine->expectation({ops});
    }
    return s;
  };
  const double m0 = total_z();
  engine->run(make_trotter_heisenberg(n, 6, 0.12));
  EXPECT_NEAR(total_z(), m0, 1e-5);
}

TEST(Trotter, ExcitationSpreads) {
  // A single flipped spin delocalizes: after evolution, <Z> at the initial
  // site rises from -1 while neighbours drop below +1.
  constexpr qubit_t n = 6;
  Circuit prep(n);
  prep.x(2);
  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg_of(3));
  engine->run(prep);
  engine->run(make_trotter_heisenberg(n, 6, 0.15));
  std::string z2(n, 'I'), z3(n, 'I');
  z2[2] = 'Z';
  z3[3] = 'Z';
  EXPECT_GT(engine->expectation({z2}), -0.99);
  EXPECT_LT(engine->expectation({z3}), 0.99);
}

TEST(Trotter, RegistryIncludesHeisenberg) {
  const auto names = workload_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "heisenberg"), names.end());
  const Circuit c = make_workload("heisenberg", 6, 0);
  EXPECT_FALSE(c.empty());
}

TEST(Trotter, RejectsTooFewSites) {
  EXPECT_THROW(make_trotter_heisenberg(1, 1, 0.1), Error);
}

}  // namespace
}  // namespace memq::circuit
