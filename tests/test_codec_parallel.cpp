// Parallel codec pipeline: results must be bit-identical for any
// codec_threads (the determinism contract of DESIGN.md "Parallel online
// pipeline"), the in-flight window must stay bounded, ChunkStore must
// tolerate distinct-chunk concurrency, and ThreadPool::parallel_for must
// survive nested submits and exceptions.
#include "core/codec_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "circuit/workloads.hpp"
#include "common/thread_pool.hpp"
#include "core/engine.hpp"
#include "core/memq_engine.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;

EngineConfig threaded_config(std::uint32_t threads, qubit_t chunk_qubits) {
  EngineConfig cfg;
  cfg.chunk_qubits = chunk_qubits;
  cfg.codec.bound = 1e-6;
  cfg.codec_threads = threads;
  return cfg;
}

bool bit_identical(const sv::StateVector& a, const sv::StateVector& b) {
  if (a.amplitudes().size() != b.amplitudes().size()) return false;
  return std::memcmp(a.amplitudes().data(), b.amplitudes().data(),
                     a.amplitudes().size() * sizeof(amp_t)) == 0;
}

// ---------------------------------------------------------------------------
// Determinism: codec_threads must never change a single bit of the result.
// ---------------------------------------------------------------------------

class CodecParallelDeterminism
    : public ::testing::TestWithParam<EngineKind> {};

TEST_P(CodecParallelDeterminism, BitIdenticalAcrossThreadCounts) {
  const Circuit c = circuit::make_workload("random", 8, 42);
  auto serial = make_engine(GetParam(), 8, threaded_config(1, 4));
  auto parallel = make_engine(GetParam(), 8, threaded_config(8, 4));
  serial->run(c);
  parallel->run(c);

  EXPECT_TRUE(bit_identical(serial->to_dense(), parallel->to_dense()));
  EXPECT_EQ(serial->norm(), parallel->norm());

  const sv::PauliString pauli{"XZIYIZXI"};
  EXPECT_EQ(serial->expectation(pauli), parallel->expectation(pauli));

  const std::vector<qubit_t> qs{0, 3, 6};
  EXPECT_EQ(serial->marginal_probabilities(qs),
            parallel->marginal_probabilities(qs));

  // Same seed + same per-chunk reduction order => identical CDF walk.
  EXPECT_EQ(serial->sample_counts(200), parallel->sample_counts(200));
}

INSTANTIATE_TEST_SUITE_P(Engines, CodecParallelDeterminism,
                         ::testing::Values(EngineKind::kMemQSim,
                                           EngineKind::kWu));

TEST(CodecParallel, MeasurementOutcomesIdentical) {
  // Measurements consume engine RNG on the coordinator; outcomes (and the
  // collapsed states) must match bit for bit across thread counts. Mix
  // chunk-local (q0) and cross-chunk (q6) measured qubits.
  Circuit c(8);
  for (qubit_t q = 0; q < 8; ++q) c.append(Gate::h(q));
  c.append(Gate::cx(0, 7));
  c.append(Gate::cx(3, 5));
  c.measure(0);
  c.measure(6);
  c.append(Gate::h(2));
  c.measure(2);

  for (const EngineKind kind : {EngineKind::kMemQSim, EngineKind::kWu}) {
    auto serial = make_engine(kind, 8, threaded_config(1, 4));
    auto parallel = make_engine(kind, 8, threaded_config(8, 4));
    serial->run(c);
    parallel->run(c);
    EXPECT_TRUE(bit_identical(serial->to_dense(), parallel->to_dense()))
        << engine_kind_name(kind);
  }
}

TEST(CodecParallel, LoadDenseRoundTripMatchesSerial) {
  auto serial = make_engine(EngineKind::kMemQSim, 8, threaded_config(1, 4));
  auto parallel = make_engine(EngineKind::kMemQSim, 8, threaded_config(8, 4));
  const Circuit c = circuit::make_workload("qft", 8, 7);
  serial->run(c);
  const sv::StateVector state = serial->to_dense();
  parallel->load_dense(state.amplitudes());
  serial->load_dense(state.amplitudes());
  EXPECT_TRUE(bit_identical(serial->to_dense(), parallel->to_dense()));
}

// ---------------------------------------------------------------------------
// Bounded in-flight window
// ---------------------------------------------------------------------------

TEST(CodecParallel, InFlightWindowStaysBounded) {
  constexpr std::uint32_t kThreads = 4;
  EngineConfig cfg = threaded_config(kThreads, 4);
  auto engine = make_engine(EngineKind::kMemQSim, 10, cfg);
  // "random" mixes local and pair stages; pair items are two chunks wide.
  engine->run(circuit::make_workload("random", 10, 11));
  (void)engine->norm();
  (void)engine->sample_counts(64);

  const std::uint64_t chunk_raw = (index_t{1} << cfg.chunk_qubits) * kAmpBytes;
  const std::uint64_t depth = cfg.device_count * cfg.device_slots + 1;
  const std::uint64_t bound = (depth + kThreads) * 2 * chunk_raw;
  EXPECT_GT(engine->telemetry().peak_inflight_bytes, 0u);
  EXPECT_LE(engine->telemetry().peak_inflight_bytes, bound);
}

// ---------------------------------------------------------------------------
// ChunkStore under distinct-chunk concurrency
// ---------------------------------------------------------------------------

TEST(ChunkStoreThreaded, DistinctChunkLoadStoreConcurrent) {
  compress::ChunkCodecConfig codec;
  codec.bound = 1e-8;
  ChunkStore store(8, 4, codec);  // 16 chunks of 16 amps
  const index_t chunk_amps = store.chunk_amps();

  std::vector<amp_t> reference(dim_of(8));
  for (index_t i = 0; i < reference.size(); ++i)
    reference[i] = amp_t{std::sin(0.1 * static_cast<double>(i + 1)),
                         std::cos(0.2 * static_cast<double>(i))};

  ThreadPool pool(4);
  pool.parallel_for(store.n_chunks(), [&](std::size_t ci) {
    compress::ChunkCodec local(codec);  // codecs are per-thread by contract
    store.store_with(local, ci,
                     std::span<const amp_t>(reference)
                         .subspan(ci * chunk_amps, chunk_amps));
  });
  EXPECT_EQ(store.stores(), 16u);
  EXPECT_GT(store.compressed_bytes(), 0u);

  std::vector<amp_t> decoded(dim_of(8));
  pool.parallel_for(store.n_chunks(), [&](std::size_t ci) {
    compress::ChunkCodec local(codec);
    store.load_with(local, ci,
                    std::span<amp_t>(decoded).subspan(ci * chunk_amps,
                                                      chunk_amps));
  });
  EXPECT_EQ(store.loads(), 16u);
  for (index_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(decoded[i].real(), reference[i].real(), 1e-5) << i;
    EXPECT_NEAR(decoded[i].imag(), reference[i].imag(), 1e-5) << i;
  }
}

// ---------------------------------------------------------------------------
// ThreadPool edge cases
// ---------------------------------------------------------------------------

TEST(ThreadPoolEdge, ParallelForRethrowsAndSurvives) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                   ran.fetch_add(1);
                                 }),
               std::runtime_error);
  // The pool must still be fully usable afterwards (no dangling task state).
  std::atomic<int> after{0};
  pool.parallel_for(50, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
}

TEST(ThreadPoolEdge, ParallelForStopsEarlyOnException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(1000000,
                                 [&](std::size_t i) {
                                   if (i == 0) throw std::logic_error("stop");
                                   ran.fetch_add(1);
                                 }),
               std::logic_error);
  // Not all million iterations should have run after the early failure.
  EXPECT_LT(ran.load(), 1000000);
}

TEST(ThreadPoolEdge, NestedSubmitInsideParallelFor) {
  ThreadPool pool(3);
  std::atomic<int> inner{0};
  pool.parallel_for(64, [&](std::size_t) {
    // Fire-and-forget nested work; waiting happens outside the loop so no
    // worker can deadlock on its own queue.
    (void)pool.submit([&inner] { inner.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPoolEdge, ParallelForFirstExceptionWins) {
  ThreadPool pool(4);
  // Every iteration throws; exactly one exception must surface and the call
  // must not terminate or leak futures.
  EXPECT_THROW(
      pool.parallel_for(32,
                        [](std::size_t i) {
                          throw std::runtime_error("it " + std::to_string(i));
                        }),
      std::runtime_error);
}

}  // namespace
}  // namespace memq::core
