#include "core/partitioner.hpp"

#include <gtest/gtest.h>

#include "circuit/workloads.hpp"
#include "common/error.hpp"
#include "core/chunk_exec.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;
using circuit::Gate;
using circuit::GateKind;

TEST(Partitioner, AllLocalCircuitIsOneStage) {
  Circuit c(8);
  c.h(0).cx(0, 1).t(2).swap(1, 3).rz(7, 0.5);  // rz(7) diagonal => local
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kLocal);
  EXPECT_EQ(plan.stages[0].gates.size(), 5u);
  EXPECT_EQ(plan.stats.local_stages, 1u);
  EXPECT_EQ(plan.stats.gates_in_local, 5u);
}

TEST(Partitioner, PairStageGroupsSameHighQubit) {
  Circuit c(8);
  c.h(6).rx(6, 0.2).ry(6, 0.3);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPair);
  EXPECT_EQ(plan.stages[0].pair_qubit, 6u);
  EXPECT_EQ(plan.stages[0].gates.size(), 3u);
}

TEST(Partitioner, DifferentHighQubitsSplitStages) {
  Circuit c(8);
  c.h(5).h(6);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].pair_qubit, 5u);
  EXPECT_EQ(plan.stages[1].pair_qubit, 6u);
}

TEST(Partitioner, LocalRunAbsorbedIntoPairStage) {
  Circuit c(8);
  c.h(0).t(1).h(6);  // locals then a pair gate
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPair);
  EXPECT_EQ(plan.stages[0].gates.size(), 3u);
}

TEST(Partitioner, LocalsAfterPairJoinIt) {
  Circuit c(8);
  c.h(6).h(0).t(1);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPair);
}

TEST(Partitioner, PureXPermute) {
  Circuit c(8);
  c.x(6);
  c.append(Gate::cx(5, 7));  // control 5 >= c: still pure permute
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 2u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPermute);
  EXPECT_EQ(plan.stages[1].kind, StageKind::kPermute);
}

TEST(Partitioner, XWithLocalControlIsPair) {
  Circuit c(8);
  c.append(Gate::cx(0, 6));
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPair);
}

TEST(Partitioner, HighSwapIsPermute) {
  Circuit c(8);
  c.swap(5, 7);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kPermute);
}

TEST(Partitioner, MixedSwapLoweredToCx) {
  Circuit c(8);
  c.swap(0, 6);
  const StagePlan plan = partition(c, 4);
  // cx(0->6): pair on 6; cx(6->0): local with high control; cx(0->6): pair.
  // The middle local gate joins the first pair stage (same run), so we get
  // pair(6) stages; count total gates = 3.
  std::size_t total = 0;
  for (const auto& st : plan.stages) {
    EXPECT_NE(st.kind, StageKind::kPermute);
    total += st.gates.size();
  }
  EXPECT_EQ(total, 3u);
}

TEST(Partitioner, MeasureIsItsOwnStage) {
  Circuit c(8);
  c.h(0).measure(0).h(1);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 3u);
  EXPECT_EQ(plan.stages[0].kind, StageKind::kLocal);
  EXPECT_EQ(plan.stages[1].kind, StageKind::kMeasure);
  EXPECT_EQ(plan.stages[2].kind, StageKind::kLocal);
}

TEST(Partitioner, BarriersAreDropped) {
  Circuit c(8);
  c.h(0);
  c.append(Gate::barrier({0, 1}));
  c.h(1);
  const StagePlan plan = partition(c, 4);
  ASSERT_EQ(plan.stages.size(), 1u);
  EXPECT_EQ(plan.stages[0].gates.size(), 2u);
}

TEST(Partitioner, StageInvariantsOnWorkloads) {
  for (const auto& name : circuit::workload_names()) {
    const Circuit c = circuit::make_workload(name, 8, 7);
    for (qubit_t chunk_q : {3u, 5u}) {
      const StagePlan plan = partition(c, chunk_q);
      for (const Stage& st : plan.stages) {
        switch (st.kind) {
          case StageKind::kLocal:
            for (const Gate& g : st.gates)
              EXPECT_TRUE(is_chunk_local(g, chunk_q))
                  << name << ": " << g.to_string();
            break;
          case StageKind::kPair:
            for (const Gate& g : st.gates) {
              if (is_chunk_local(g, chunk_q)) continue;
              qubit_t high = 0;
              int n_high = 0;
              for (const qubit_t t : g.targets)
                if (t >= chunk_q) {
                  high = t;
                  ++n_high;
                }
              EXPECT_EQ(n_high, 1) << name << ": " << g.to_string();
              EXPECT_EQ(high, st.pair_qubit) << name << ": " << g.to_string();
            }
            break;
          case StageKind::kPermute:
            ASSERT_EQ(st.gates.size(), 1u);
            break;
          case StageKind::kMeasure:
            ASSERT_EQ(st.gates.size(), 1u);
            EXPECT_TRUE(st.gates[0].is_nonunitary());
            break;
        }
      }
    }
  }
}

TEST(Partitioner, LocalityMetricFavorsLocalRuns) {
  // GHZ at large chunks: the CX ladder below the chunk boundary is local;
  // gates per codec pass must exceed 1 (the Wu-style per-gate cost).
  const Circuit ghz = circuit::make_ghz(10);
  const StagePlan coarse = partition(ghz, 8);
  EXPECT_GT(coarse.stats.gates_per_codec_pass(), 1.0);
  // Tiny chunks: most of the CX ladder leaves the local regime.
  const StagePlan fine = partition(ghz, 2);
  EXPECT_GT(fine.stats.pair_stages + fine.stats.permute_stages,
            coarse.stats.pair_stages + coarse.stats.permute_stages);
  EXPECT_GT(coarse.stats.gates_per_codec_pass(),
            fine.stats.gates_per_codec_pass());
}

TEST(Partitioner, RejectsBadChunkSize) {
  Circuit c(4);
  EXPECT_THROW(partition(c, 0), Error);
  EXPECT_THROW(partition(c, 5), Error);
}

}  // namespace
}  // namespace memq::core
