// Trajectory noise sampling + Pauli-sum observables.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/noise.hpp"
#include "circuit/workloads.hpp"
#include "common/stats.hpp"
#include "core/batch_scheduler.hpp"
#include "core/observables.hpp"

namespace memq {
namespace {

using circuit::Circuit;
using circuit::NoiseModel;
using circuit::sample_noisy_trajectory;

TEST(Noise, ZeroNoiseIsIdentityTransform) {
  const Circuit c = circuit::make_qft(5);
  const Circuit noisy = sample_noisy_trajectory(c, {}, 7);
  ASSERT_EQ(noisy.size(), c.size());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(noisy[i], c[i]);
}

TEST(Noise, DeterministicInSeed) {
  NoiseModel model;
  model.depolarizing_1q = 0.2;
  model.depolarizing_2q = 0.3;
  const Circuit c = circuit::make_random_circuit(5, 5, 3);
  const Circuit a = sample_noisy_trajectory(c, model, 42);
  const Circuit b = sample_noisy_trajectory(c, model, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  const Circuit other = sample_noisy_trajectory(c, model, 43);
  EXPECT_NE(other.size(), 0u);
}

TEST(Noise, InsertionRateMatchesProbability) {
  NoiseModel model;
  model.bit_flip = 0.25;
  Circuit c(1);
  for (int i = 0; i < 4000; ++i) c.h(0);
  const Circuit noisy = sample_noisy_trajectory(c, model, 5);
  const std::size_t inserted = noisy.size() - c.size();
  // Binomial(4000, 0.25): mean 1000, sigma ~ 27.
  EXPECT_NEAR(static_cast<double>(inserted), 1000.0, 5 * 27.0);
}

TEST(Noise, MeasureAndBarrierUntouched) {
  NoiseModel model;
  model.bit_flip = 1.0;  // would insert after every unitary
  Circuit c(2);
  c.measure(0);
  c.append(circuit::Gate::barrier({0, 1}));
  const Circuit noisy = sample_noisy_trajectory(c, model, 1);
  EXPECT_EQ(noisy.size(), 2u);
}

TEST(Noise, BadProbabilityRejected) {
  NoiseModel model;
  model.depolarizing_1q = 1.5;
  EXPECT_THROW(sample_noisy_trajectory(Circuit(1), model, 0), Error);
}

TEST(Noise, GhzCorrelationDecaysWithNoise) {
  // Average ZZ parity of GHZ over trajectories decreases monotonically in p
  // (each Z/X error flips parity correlations with some probability).
  constexpr qubit_t n = 4;
  const Circuit ghz = circuit::make_ghz(n);
  const auto mean_xn = [&](double p) {
    NoiseModel model;
    model.depolarizing_1q = p;
    model.depolarizing_2q = p;
    RunningStats st;
    core::EngineConfig cfg;
    cfg.chunk_qubits = 2;
    for (std::uint64_t t = 0; t < 40; ++t) {
      auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
      engine->run(sample_noisy_trajectory(ghz, model, 100 + t));
      st.add(engine->expectation({std::string(n, 'X')}));
    }
    return st.mean();
  };
  const double clean = mean_xn(0.0);
  const double mild = mean_xn(0.05);
  const double heavy = mean_xn(0.4);
  EXPECT_NEAR(clean, 1.0, 1e-9);
  EXPECT_LT(mild, clean);
  EXPECT_LT(heavy, mild + 0.15);  // allow trajectory-sampling slack
  EXPECT_LT(heavy, 0.5);
}

TEST(Noise, BatchTrajectoriesMatchSerialExactly) {
  // ISSUE 10: --batch-mode trajectories. The batch expands the SAME noisy
  // trajectories a serial loop would (sample_noisy_trajectory with seed
  // config.seed + m) and samples each member with the serial engine's
  // generator, so per-member counts — and hence any trajectory mean — match
  // the serial loop exactly, not just statistically.
  constexpr qubit_t n = 5;
  constexpr std::uint32_t kK = 8;
  NoiseModel model;
  model.depolarizing_1q = 0.1;

  core::EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.compressor = "null";
  cfg.batch_size = kK;
  cfg.batch_mode = core::BatchMode::kTrajectories;

  const Circuit ghz = circuit::make_ghz(n);
  const auto members = core::BatchScheduler::expand_members(ghz, cfg, model);
  ASSERT_EQ(members.size(), kK);

  core::BatchScheduler batch(n, cfg);
  batch.run(members);
  const auto serial = core::run_batch_serial(core::EngineKind::kMemQSim, n,
                                             cfg, members, 64);
  double batch_mean = 0.0, serial_mean = 0.0;
  for (std::uint32_t m = 0; m < kK; ++m) {
    EXPECT_EQ(batch.member_counts(m, 64), serial[m]) << "member " << m;
    batch_mean += batch.member_expectation(m, {std::string(n, 'Z')});
    core::EngineConfig one = cfg;
    one.batch_size = 1;
    one.seed = cfg.seed + m;
    auto engine = core::make_engine(core::EngineKind::kMemQSim, n, one);
    engine->run(members[m]);
    serial_mean += engine->expectation({std::string(n, 'Z')});
  }
  EXPECT_NEAR(batch_mean / kK, serial_mean / kK, 1e-12)
      << "trajectory means must agree on bit-identical member states";
}

TEST(Noise, BatchTrajectoryStatisticsMatchAnalyticPauliChannel) {
  // Chi-squared sanity against an analytic Pauli channel: L X-gates on one
  // qubit under bit-flip noise p leave the qubit flipped iff the number of
  // inserted X errors is odd, so P(|1>) = (1 - (1 - 2p)^L) / 2 exactly.
  // Each trajectory is deterministic (a basis state); across K seeded
  // members the flip count is Binomial(K, p_odd). Seeded, so never flaky —
  // the bound just has to hold for this seed set.
  constexpr std::uint32_t kK = 128;
  constexpr std::size_t kL = 4;
  constexpr double p = 0.1;
  NoiseModel model;
  model.bit_flip = p;

  core::EngineConfig cfg;
  cfg.chunk_qubits = 1;
  cfg.codec.compressor = "null";
  cfg.batch_size = kK;
  cfg.batch_mode = core::BatchMode::kTrajectories;

  Circuit c(1);
  for (std::size_t i = 0; i < kL; ++i) c.x(0);
  const auto members = core::BatchScheduler::expand_members(c, cfg, model);

  core::BatchScheduler batch(1, cfg);
  batch.run(members);
  double flipped = 0.0;
  for (std::uint32_t m = 0; m < kK; ++m)
    if (batch.member_expectation(m, {"Z"}) < 0.0) flipped += 1.0;

  const double p_odd = 0.5 * (1.0 - std::pow(1.0 - 2.0 * p, kL));
  const double expect1 = kK * p_odd;
  const double expect0 = kK * (1.0 - p_odd);
  const double chi2 =
      (flipped - expect1) * (flipped - expect1) / expect1 +
      ((kK - flipped) - expect0) * ((kK - flipped) - expect0) / expect0;
  EXPECT_LT(chi2, 10.0) << "observed " << flipped << " flips of " << kK
                        << ", analytic mean " << expect1;
}

TEST(Observables, TfimProductStateEnergies) {
  constexpr qubit_t n = 6;
  const auto h = core::PauliSum::tfim_chain(n, 1.0, 0.5);
  core::EngineConfig cfg;
  cfg.chunk_qubits = 3;

  // |000000>: all ZZ terms give -J*(n-1); X terms vanish.
  auto zeros = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  zeros->run(Circuit(n));
  EXPECT_NEAR(core::expectation(*zeros, h), -(static_cast<double>(n) - 1), 1e-6);

  // |++++++>: ZZ terms vanish, X terms give -h*n.
  auto plus = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  Circuit prep(n);
  for (qubit_t q = 0; q < n; ++q) prep.h(q);
  plus->run(prep);
  EXPECT_NEAR(core::expectation(*plus, h), -0.5 * static_cast<double>(n), 1e-6);
}

TEST(Observables, MaxCutCountsCutEdges) {
  constexpr qubit_t n = 4;
  const std::vector<std::pair<qubit_t, qubit_t>> edges{{0, 1}, {1, 2}, {2, 3}};
  const auto h = core::PauliSum::maxcut(n, edges);
  core::EngineConfig cfg;
  cfg.chunk_qubits = 2;
  // |0101>: qubits 0,2 = 0 and 1,3 = 1 cuts all three edges.
  auto engine = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  Circuit prep(n);
  prep.x(1).x(3);
  engine->run(prep);
  EXPECT_NEAR(core::expectation(*engine, h), 3.0, 1e-6);
  // |0011> cuts only edge (1,2).
  auto engine2 = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  Circuit prep2(n);
  prep2.x(2).x(3);
  engine2->run(prep2);
  EXPECT_NEAR(core::expectation(*engine2, h), 1.0, 1e-6);
}

TEST(Observables, MaxCutRejectsBadEdges) {
  EXPECT_THROW(core::PauliSum::maxcut(3, {{0, 5}}), Error);
  EXPECT_THROW(core::PauliSum::maxcut(3, {{1, 1}}), Error);
}

TEST(Observables, AgreesWithDenseEngine) {
  constexpr qubit_t n = 6;
  const Circuit c = circuit::make_random_circuit(n, 6, 13);
  const auto h = core::PauliSum::tfim_chain(n, 0.7, 1.3);
  core::EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  auto memq = core::make_engine(core::EngineKind::kMemQSim, n, cfg);
  auto dense = core::make_engine(core::EngineKind::kDense, n, cfg);
  memq->run(c);
  dense->run(c);
  EXPECT_NEAR(core::expectation(*memq, h), core::expectation(*dense, h),
              1e-5);
}

}  // namespace
}  // namespace memq
