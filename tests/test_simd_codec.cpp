// SIMD dispatch equivalence and shared-dictionary behavior of the codec
// plane (ISSUE 6): every compressor must produce byte-identical encoded
// streams and bit-identical decoded amplitudes whether the hot loops run
// scalar or vectorized, and szq's run-level trained dictionary must round
// trip, escape cleanly, reject id mismatches, and survive checkpoints.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <vector>

#include "common/cpu_features.hpp"
#include "common/error.hpp"
#include "compress/byte_buffer.hpp"
#include "compress/chunk_codec.hpp"
#include "compress/compressor.hpp"
#include "compress/dictionary.hpp"
#include "compress/quantizer.hpp"
#include "core/chunk_store.hpp"

namespace memq {
namespace {

using compress::ByteBuffer;
using compress::ByteReader;
using compress::ByteWriter;
using compress::DictContext;
using compress::SzqDict;

// A length that is several szq predictor blocks plus a ragged tail, so the
// vector kernels' main loops AND their scalar remainders are both exercised.
constexpr std::size_t kPlaneLen = 3 * 4096 + 17;

std::vector<double> smooth_plane(std::size_t n = kPlaneLen) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = 1e-3 * std::sin(2e-4 * static_cast<double>(i));
  return v;
}

std::vector<double> haar_plane(std::uint64_t seed, std::size_t n = kPlaneLen) {
  std::mt19937_64 rng(seed);
  std::normal_distribution<double> normal(0.0, 1.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  std::vector<double> v(n);
  for (auto& x : v) x = normal(rng) * scale;
  return v;
}

std::vector<double> sparse_plane(std::uint64_t seed, std::size_t n = kPlaneLen) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  std::vector<double> v(n, 0.0);
  for (std::size_t i = 0; i < n; i += 50) v[i] = uni(rng);
  return v;
}

std::vector<double> zero_plane(std::size_t n = kPlaneLen) {
  return std::vector<double>(n, 0.0);
}

struct NamedPlane {
  const char* name;
  std::vector<double> data;
};

std::vector<NamedPlane> all_planes() {
  std::vector<NamedPlane> planes;
  planes.push_back({"smooth", smooth_plane()});
  planes.push_back({"haar", haar_plane(7)});
  planes.push_back({"sparse", sparse_plane(11)});
  planes.push_back({"zero", zero_plane()});
  return planes;
}

bool bit_identical(std::span<const double> a, std::span<const double> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

// Pins the dispatch level for one scope; restores env-derived dispatch on
// exit so tests cannot leak a forced level into each other.
class SimdCodec : public ::testing::Test {
 protected:
  void TearDown() override { simd::clear_force(); }
};

// The tentpole contract: forced-scalar and widest-available dispatch emit
// the SAME bytes, and each stream decodes to the SAME doubles under either
// dispatch. Every registered compressor, every plane shape.
TEST_F(SimdCodec, EncodedStreamsByteIdenticalAcrossDispatch) {
  const auto planes = all_planes();
  for (const auto& name : compress::compressor_names()) {
    const auto comp = compress::make_compressor(name);
    const double eb = 1e-7;  // ignored by lossless codecs
    for (const auto& plane : planes) {
      SCOPED_TRACE(::testing::Message() << name << " / " << plane.name);

      simd::force(simd::IsaLevel::kScalar);
      ByteBuffer scalar_stream;
      comp->compress(plane.data, eb, scalar_stream);

      simd::force(simd::detected());
      ByteBuffer simd_stream;
      comp->compress(plane.data, eb, simd_stream);

      ASSERT_EQ(scalar_stream, simd_stream);

      // Cross-decode: the scalar decoder reads the SIMD-encoded stream and
      // vice versa; all four decodes must agree bit for bit.
      std::vector<double> dec_simd(plane.data.size());
      comp->decompress(simd_stream, dec_simd);
      simd::force(simd::IsaLevel::kScalar);
      std::vector<double> dec_scalar(plane.data.size());
      comp->decompress(simd_stream, dec_scalar);
      EXPECT_TRUE(bit_identical(dec_scalar, dec_simd));

      if (comp->lossless()) {
        EXPECT_TRUE(bit_identical(plane.data, dec_scalar));
      } else {
        for (std::size_t i = 0; i < plane.data.size(); ++i)
          ASSERT_LE(std::fabs(dec_scalar[i] - plane.data[i]), eb)
              << "index " << i;
      }
    }
  }
}

// Same contract one level up: the ChunkCodec path also runs the SIMD
// split/merge/max-abs kernels, so complete encoded chunks (header, checksum,
// payload) must be byte-identical across dispatch too.
TEST_F(SimdCodec, ChunkCodecByteIdenticalAcrossDispatch) {
  compress::ChunkCodecConfig cfg;
  cfg.compressor = "szq";
  cfg.bound = 1e-6;

  const auto re = haar_plane(21, 1 << 10);
  const auto im = haar_plane(22, 1 << 10);
  std::vector<amp_t> amps(re.size());
  for (std::size_t i = 0; i < amps.size(); ++i) amps[i] = {re[i], im[i]};

  simd::force(simd::IsaLevel::kScalar);
  compress::ChunkCodec scalar_codec(cfg);
  ByteBuffer scalar_blob;
  scalar_codec.encode(amps, scalar_blob);

  simd::force(simd::detected());
  compress::ChunkCodec simd_codec(cfg);
  ByteBuffer simd_blob;
  simd_codec.encode(amps, simd_blob);

  ASSERT_EQ(scalar_blob, simd_blob);

  std::vector<amp_t> dec_simd(amps.size());
  simd_codec.decode(simd_blob, dec_simd);
  simd::force(simd::IsaLevel::kScalar);
  std::vector<amp_t> dec_scalar(amps.size());
  scalar_codec.decode(simd_blob, dec_scalar);
  EXPECT_EQ(0, std::memcmp(dec_scalar.data(), dec_simd.data(),
                           dec_scalar.size() * sizeof(amp_t)));
}

TEST(SzqDictionary, TrainsOnlyAfterBothThresholds) {
  DictContext ctx;
  std::vector<std::uint64_t> counts(compress::kSzqAlphabet, 0);
  counts[100] = 1000;
  counts[200] = 500;

  // Enough tokens but too few chunks: still sampling.
  ctx.observe(counts, DictContext::kTrainTokens);
  EXPECT_EQ(ctx.dict(), nullptr);
  ctx.observe(counts, DictContext::kTrainTokens);
  ctx.observe(counts, DictContext::kTrainTokens);
  EXPECT_EQ(ctx.dict(), nullptr);
  EXPECT_EQ(ctx.chunks_observed(), 3u);

  ctx.observe(counts, DictContext::kTrainTokens);
  ASSERT_NE(ctx.dict(), nullptr);

  // Training is one-shot: later observations don't replace the table.
  const auto id = ctx.dict()->id();
  ctx.observe(counts, DictContext::kTrainTokens);
  EXPECT_EQ(ctx.dict()->id(), id);
}

TEST(SzqDictionary, SerializeRoundTripValidatesId) {
  std::vector<std::uint64_t> counts(compress::kSzqAlphabet, 0);
  for (std::size_t i = 0; i < 64; ++i) counts[i * 13 % counts.size()] = i + 1;
  const SzqDict dict = SzqDict::build(counts);

  ByteBuffer buf;
  ByteWriter w(buf);
  dict.serialize(w);

  ByteReader r(buf);
  const SzqDict back = SzqDict::deserialize(r);
  EXPECT_EQ(back.id(), dict.id());

  // The id is the leading u64: flipping it must fail validation against the
  // (re-serialized) table that follows.
  buf[0] ^= 0xff;
  ByteReader r2(buf);
  EXPECT_THROW((void)SzqDict::deserialize(r2), CorruptData);
}

TEST(SzqDictionary, SharedStreamRoundTripsAndRequiresTheDictionary) {
  const auto comp = compress::make_compressor("szq");
  // A bound where haar data quantizes in-range: tokens spread over a few
  // thousand symbols and the trained table genuinely fits.
  const auto plane = haar_plane(33);
  const double eb = 1e-5;

  // Train the way a run does: accumulate MANY chunks, so real counts
  // dominate the +1 smoothing over the 65538-symbol alphabet. (One chunk of
  // ~12K tokens would be smoothing-dominated and every encode would escape.)
  DictContext ctx;
  ByteBuffer self_stream;
  comp->compress(plane, eb, self_stream, &ctx);  // observes; no dict yet
  EXPECT_EQ(ctx.chunks_observed(), 1u);
  for (int i = 0; i < 24; ++i) {
    ByteBuffer scratch_stream;
    comp->compress(plane, eb, scratch_stream, &ctx);
  }
  ctx.train_now();
  ASSERT_NE(ctx.dict(), nullptr);

  // Trained on this very distribution, the shared table fits: the encoder
  // must reference it instead of embedding a per-chunk table.
  ByteBuffer shared_stream;
  comp->compress(plane, eb, shared_stream, &ctx);
  EXPECT_NE(shared_stream, self_stream);
  EXPECT_LT(shared_stream.size(), self_stream.size());

  // Decoded amplitudes are identical with or without the dictionary.
  std::vector<double> dec_self(plane.size()), dec_shared(plane.size());
  comp->decompress(self_stream, dec_self);
  comp->decompress(shared_stream, dec_shared, &ctx);
  EXPECT_TRUE(bit_identical(dec_self, dec_shared));

  // A dictionary-referencing stream without the dictionary is corrupt...
  std::vector<double> scratch(plane.size());
  EXPECT_THROW(comp->decompress(shared_stream, scratch), CorruptData);
  DictContext untrained;
  EXPECT_THROW(comp->decompress(shared_stream, scratch, &untrained),
               CorruptData);

  // ...and so is decoding against a DIFFERENT trained dictionary (id check).
  DictContext other;
  ByteBuffer tmp;
  comp->compress(sparse_plane(44), eb, tmp, &other);
  other.train_now();
  ASSERT_NE(other.dict(), nullptr);
  ASSERT_NE(other.dict()->id(), ctx.dict()->id());
  EXPECT_THROW(comp->decompress(shared_stream, scratch, &other), CorruptData);
}

TEST(SzqDictionary, PoorFitEscapesToSelfDescribingStream) {
  const auto comp = compress::make_compressor("szq");
  const double eb = 1e-7;

  // Train on the all-zero distribution: after +1 smoothing the table is
  // near-uniform over the whole alphabet, a terrible fit for haar data.
  DictContext ctx;
  ByteBuffer tmp;
  comp->compress(zero_plane(), eb, tmp, &ctx);
  ctx.train_now();
  ASSERT_NE(ctx.dict(), nullptr);

  const auto plane = haar_plane(55);
  ByteBuffer stream;
  comp->compress(plane, eb, stream, &ctx);

  // The escape means the stream is self-describing: it decodes with NO
  // dictionary at all, to the same values as a dictionary-aware decode.
  std::vector<double> dec_plain(plane.size()), dec_ctx(plane.size());
  comp->decompress(stream, dec_plain);
  comp->decompress(stream, dec_ctx, &ctx);
  EXPECT_TRUE(bit_identical(dec_plain, dec_ctx));
}

TEST(SzqDictionary, CheckpointCarriesAndRestoresTheDictionary) {
  compress::ChunkCodecConfig cfg;
  cfg.compressor = "szq";
  cfg.bound = 1e-6;
  cfg.dict_mode = compress::DictMode::kTrain;
  cfg.dict = std::make_shared<DictContext>();

  constexpr qubit_t kQubits = 8, kChunkQubits = 5;
  core::ChunkStore store(kQubits, kChunkQubits, cfg);
  const index_t n_chunks = store.n_chunks();
  const index_t chunk_amps = store.chunk_amps();

  std::vector<std::vector<amp_t>> chunks(n_chunks);
  for (index_t c = 0; c < n_chunks; ++c) {
    const auto re = haar_plane(100 + static_cast<std::uint64_t>(c),
                               static_cast<std::size_t>(chunk_amps));
    const auto im = haar_plane(200 + static_cast<std::uint64_t>(c),
                               static_cast<std::size_t>(chunk_amps));
    chunks[c].resize(chunk_amps);
    for (index_t k = 0; k < chunk_amps; ++k)
      chunks[c][k] = {re[k], im[k]};
    store.store(c, chunks[c]);
  }
  // Force training from the observed chunks, then re-store so blobs can
  // reference the shared table.
  cfg.dict->train_now();
  ASSERT_NE(cfg.dict->dict(), nullptr);
  for (index_t c = 0; c < n_chunks; ++c) store.store(c, chunks[c]);

  std::stringstream ckpt;
  store.save(ckpt);

  // Restore into a store whose dictionary context is empty: the checkpoint
  // must install the table, and every chunk must decode bit-identically.
  compress::ChunkCodecConfig cfg2 = cfg;
  cfg2.dict = std::make_shared<DictContext>();
  core::ChunkStore restored(kQubits, kChunkQubits, cfg2);
  restored.restore(ckpt);
  ASSERT_NE(cfg2.dict->dict(), nullptr);
  EXPECT_EQ(cfg2.dict->dict()->id(), cfg.dict->dict()->id());

  std::vector<amp_t> a(chunk_amps), b(chunk_amps);
  for (index_t c = 0; c < n_chunks; ++c) {
    store.load(c, a);
    restored.load(c, b);
    EXPECT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(amp_t)))
        << "chunk " << c;
  }

  // A run with dictionaries off cannot restore a dictionary-carrying
  // checkpoint — that must be an explicit error, not silent decode failures.
  compress::ChunkCodecConfig cfg_off;
  cfg_off.compressor = "szq";
  cfg_off.bound = 1e-6;
  core::ChunkStore off(kQubits, kChunkQubits, cfg_off);
  std::stringstream ckpt2;
  store.save(ckpt2);
  EXPECT_THROW(off.restore(ckpt2), Error);
}

}  // namespace
}  // namespace memq
