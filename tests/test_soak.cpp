// Soak and cross-feature interaction tests: long interleavings of run /
// measure / checkpoint / query against invariants, plus bounded-value
// properties of the observable machinery.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "circuit/noise.hpp"
#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"
#include "core/observables.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig soak_cfg() {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-8;
  return cfg;
}

TEST(Soak, LongInterleavedSession) {
  // 30 rounds of random segments, measurements, checkpoints and queries;
  // the norm must stay pinned at 1 and every query must stay sane.
  constexpr qubit_t n = 7;
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "memq_soak.ckpt").string();
  auto engine = make_engine(EngineKind::kMemQSim, n, soak_cfg());
  Prng rng(777);
  for (int round = 0; round < 30; ++round) {
    switch (rng.uniform_index(5)) {
      case 0:
        engine->run(circuit::make_random_circuit(n, 2, 1000 + round));
        break;
      case 1: {
        Circuit c(n);
        c.measure(static_cast<qubit_t>(rng.uniform_index(n)));
        engine->run(c);
        break;
      }
      case 2:
        engine->save_state(ckpt);
        engine->run(circuit::make_random_circuit(n, 1, 2000 + round));
        engine->load_state(ckpt);  // rewind
        break;
      case 3: {
        const auto counts = engine->sample_counts(50);
        std::uint64_t total = 0;
        for (const auto& [k, v] : counts) total += v;
        ASSERT_EQ(total, 50u);
        break;
      }
      default: {
        std::string ops(n, 'I');
        ops[rng.uniform_index(n)] = 'Z';
        const double e = engine->expectation({ops});
        ASSERT_LE(std::fabs(e), 1.0 + 1e-6);
        break;
      }
    }
    ASSERT_NEAR(engine->norm(), 1.0, 1e-5) << "round " << round;
  }
  std::remove(ckpt.c_str());
}

TEST(Soak, PauliExpectationsAreBounded) {
  // |<P>| <= 1 on any normalized state, for random Pauli strings.
  constexpr qubit_t n = 6;
  auto engine = make_engine(EngineKind::kMemQSim, n, soak_cfg());
  engine->run(circuit::make_random_circuit(n, 5, 99));
  Prng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::string ops(n, 'I');
    for (qubit_t q = 0; q < n; ++q) ops[q] = "IXYZ"[rng.uniform_index(4)];
    EXPECT_LE(std::fabs(engine->expectation({ops})), 1.0 + 1e-6) << ops;
  }
}

TEST(Soak, PauliSumIsLinear) {
  constexpr qubit_t n = 5;
  auto engine = make_engine(EngineKind::kMemQSim, n, soak_cfg());
  engine->run(circuit::make_random_circuit(n, 4, 55));

  PauliSum a, b, combined;
  a.terms = {{0.7, "ZIIII"}, {-0.3, "XXIII"}};
  b.terms = {{1.1, "IIZZI"}, {0.2, "YIIIY"}};
  combined.terms = a.terms;
  combined.terms.insert(combined.terms.end(), b.terms.begin(), b.terms.end());
  EXPECT_NEAR(expectation(*engine, combined),
              expectation(*engine, a) + expectation(*engine, b), 1e-9);

  PauliSum scaled = a;
  for (auto& t : scaled.terms) t.coefficient *= 2.5;
  EXPECT_NEAR(expectation(*engine, scaled), 2.5 * expectation(*engine, a),
              1e-9);
}

TEST(Soak, NoisyTrajectoriesKeepEngineHealthy) {
  // Trajectory circuits vary in length; the engine must absorb dozens of
  // them back-to-back via reset() without leaking state or telemetry.
  constexpr qubit_t n = 6;
  circuit::NoiseModel model;
  model.depolarizing_1q = 0.05;
  auto engine = make_engine(EngineKind::kMemQSim, n, soak_cfg());
  const Circuit base = circuit::make_ghz(n);
  for (int t = 0; t < 25; ++t) {
    engine->reset();
    engine->run(circuit::sample_noisy_trajectory(base, model, 40 + t));
    ASSERT_NEAR(engine->norm(), 1.0, 1e-6) << t;
  }
}

TEST(Soak, RepeatedSaveLoadDoesNotDrift) {
  // A checkpoint round-trip is byte-exact on the compressed form: 20
  // cycles must reproduce the identical state (no recompression churn).
  constexpr qubit_t n = 6;
  const std::string ckpt =
      (std::filesystem::temp_directory_path() / "memq_drift.ckpt").string();
  auto engine = make_engine(EngineKind::kMemQSim, n, soak_cfg());
  engine->run(circuit::make_qft(n));
  const auto snapshot = engine->to_dense();
  for (int i = 0; i < 20; ++i) {
    engine->save_state(ckpt);
    engine->load_state(ckpt);
  }
  EXPECT_EQ(engine->to_dense().max_abs_diff(snapshot), 0.0);
  std::remove(ckpt.c_str());
}

}  // namespace
}  // namespace memq::core
