// load_dense ingestion, the Grover-capable QASM export path, and the
// versioned checkpoint header with its interplay against cache / layout /
// codec-pool / blob-backend configurations.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include "circuit/qasm.hpp"
#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig cfg3() {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  return cfg;
}

std::vector<amp_t> random_normalized(qubit_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<amp_t> v(dim_of(n));
  double norm = 0;
  for (auto& a : v) {
    a = rng.normal_amp();
    norm += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (auto& a : v) a *= inv;
  return v;
}

TEST(LoadDense, IngestedStateMatchesOnAllEngines) {
  constexpr qubit_t n = 7;
  const auto amps = random_normalized(n, 4);
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kWu,
                                EngineKind::kMemQSim}) {
    auto engine = make_engine(kind, n, cfg3());
    engine->load_dense(amps);
    const auto back = engine->to_dense();
    for (index_t i = 0; i < dim_of(n); ++i)
      ASSERT_LT(std::abs(back.amplitude(i) - amps[i]), 1e-6)
          << engine_kind_name(kind) << " index " << i;
  }
}

TEST(LoadDense, EvolutionContinuesFromIngestedState) {
  constexpr qubit_t n = 6;
  const auto amps = random_normalized(n, 9);
  const Circuit c = circuit::make_qft(n);

  auto memq = make_engine(EngineKind::kMemQSim, n, cfg3());
  memq->load_dense(amps);
  memq->run(c);

  sv::Simulator oracle(n);
  std::copy(amps.begin(), amps.end(), oracle.state().amplitudes().begin());
  oracle.run(c);

  const auto result = memq->to_dense();
  for (index_t i = 0; i < dim_of(n); ++i)
    ASSERT_LT(std::abs(result.amplitude(i) - oracle.state().amplitude(i)),
              1e-5);
}

TEST(LoadDense, ReplacesOptimizedLayout) {
  // Loading caller data must drop any prior qubit remapping.
  EngineConfig cfg = cfg3();
  cfg.optimize_layout = true;
  auto engine = make_engine(EngineKind::kMemQSim, 7,  cfg);
  engine->run(circuit::make_bernstein_vazirani(6, 0x15));
  const auto amps = random_normalized(7, 2);
  engine->load_dense(amps);
  EXPECT_LT(std::abs(engine->amplitude(5) - amps[5]), 1e-6);
}

TEST(LoadDense, RejectsWrongSize) {
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  std::vector<amp_t> wrong(16);
  EXPECT_THROW(engine->load_dense(wrong), Error);
}

TEST(QasmExport, GroverRoundTripsThroughLowering) {
  // mcz with many controls has no qelib1 spelling; export lowers it.
  const Circuit grover = circuit::make_grover(6, 0b110101, 2);
  const std::string text = circuit::to_qasm(grover);
  const auto prog = circuit::parse_qasm(text);
  sv::Simulator a(6), b(6);
  a.run(grover);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-8);
}

TEST(QasmExport, ControlledSGateLowers) {
  Circuit c(2);
  c.h(0).h(1);
  c.append(circuit::Gate::s(1).with_controls({0}));  // "cs" is not in qelib1
  const auto prog = circuit::parse_qasm(circuit::to_qasm(c));
  sv::Simulator a(2), b(2);
  a.run(c);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-10);
}

TEST(QasmExport, Shor15RoundTrips) {
  const Circuit shor = circuit::make_shor15_order_finding(7, 4);
  const auto prog = circuit::parse_qasm(circuit::to_qasm(shor));
  sv::Simulator a(shor.n_qubits()), b(shor.n_qubits());
  a.run(shor);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-8);
}

// ---------------------------------------------------------------------------
// Checkpoint header (magic + version) and format fallback
// ---------------------------------------------------------------------------

std::string ckpt_path(const char* tag) {
  return (std::filesystem::temp_directory_path() /
          (std::string("memq_stateio_") + tag + "_" +
           std::to_string(::getpid()) + ".ckpt"))
      .string();
}

std::string slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

void spew(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Engine checkpoint envelope: 8-byte magic + u32 format version, ahead of
// the qubit count the unversioned seed format started with.
constexpr char kMagic[8] = {'M', 'E', 'M', 'Q', 'S', 'T', 'A', 'T'};
constexpr std::size_t kEnvelopeBytes = sizeof kMagic + sizeof(std::uint32_t);

TEST(CheckpointHeader, WritesMagicAndVersion) {
  const std::string path = ckpt_path("magic");
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  engine->run(circuit::make_ghz(5));
  engine->save_state(path);

  const std::string bytes = slurp(path);
  ASSERT_GE(bytes.size(), kEnvelopeBytes);
  EXPECT_EQ(std::memcmp(bytes.data(), kMagic, sizeof kMagic), 0);
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + sizeof kMagic, sizeof version);
  EXPECT_EQ(version, 2u);
  std::remove(path.c_str());
}

TEST(CheckpointHeader, UnsupportedVersionRejected) {
  const std::string path = ckpt_path("version");
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  engine->run(circuit::make_ghz(5));
  engine->save_state(path);

  std::string bytes = slurp(path);
  const std::uint32_t bogus = 99;
  std::memcpy(bytes.data() + sizeof kMagic, &bogus, sizeof bogus);
  spew(path, bytes);

  auto fresh = make_engine(EngineKind::kMemQSim, 5, cfg3());
  try {
    fresh->load_state(path);
    FAIL() << "expected CorruptData";
  } catch (const CorruptData& e) {
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

TEST(CheckpointHeader, CorruptMagicRejected) {
  const std::string path = ckpt_path("badmagic");
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  engine->run(circuit::make_ghz(5));
  engine->save_state(path);

  std::string bytes = slurp(path);
  bytes[0] = static_cast<char>(bytes[0] ^ 0x5A);
  spew(path, bytes);

  auto fresh = make_engine(EngineKind::kMemQSim, 5, cfg3());
  EXPECT_THROW(fresh->load_state(path), CorruptData);
  std::remove(path.c_str());
}

TEST(CheckpointHeader, LegacyUnversionedFormatStillLoads) {
  // The seed format had no envelope: it began directly with the u32 qubit
  // count. Stripping the envelope from a fresh checkpoint reproduces it
  // exactly, and load_state must take the fallback path.
  const std::string path = ckpt_path("legacy");
  auto engine = make_engine(EngineKind::kMemQSim, 6, cfg3());
  engine->run(circuit::make_qft(6));
  const sv::StateVector before = engine->to_dense();
  engine->save_state(path);

  spew(path, slurp(path).substr(kEnvelopeBytes));

  auto fresh = make_engine(EngineKind::kMemQSim, 6, cfg3());
  fresh->load_state(path);
  EXPECT_LT(fresh->to_dense().max_abs_diff(before), 1e-12);
  std::remove(path.c_str());
}

TEST(CheckpointHeader, TruncatedEnvelopeRejected) {
  const std::string path = ckpt_path("trunc");
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  engine->run(circuit::make_ghz(5));
  engine->save_state(path);
  spew(path, slurp(path).substr(0, sizeof kMagic + 2));
  auto fresh = make_engine(EngineKind::kMemQSim, 5, cfg3());
  EXPECT_THROW(fresh->load_state(path), CorruptData);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Checkpoint interplay: cache, layout, codec pool, blob backend
// ---------------------------------------------------------------------------

TEST(CheckpointInterplay, DirtyCacheResidentsAreFlushed) {
  // With a large cache budget the whole working set stays dirty-resident;
  // save_state must flush it, so a cache-less engine can read the file.
  constexpr qubit_t n = 7;
  const std::string path = ckpt_path("cache");
  EngineConfig cached = cfg3();
  cached.cache_budget_bytes = 16u << 20;
  auto a = make_engine(EngineKind::kMemQSim, n, cached);
  a->run(circuit::make_random_circuit(n, 8, 5));
  a->save_state(path);

  auto b = make_engine(EngineKind::kMemQSim, n, cfg3());  // cache off
  b->load_state(path);
  EXPECT_LT(b->to_dense().max_abs_diff(a->to_dense()), 1e-12);
  std::remove(path.c_str());
}

TEST(CheckpointInterplay, OptimizedLayoutRoundTrips) {
  // A non-identity QubitLayout must survive the checkpoint: public queries
  // on the restored engine translate through the saved mapping.
  constexpr qubit_t n = 7;
  const std::string path = ckpt_path("layout");
  EngineConfig cfg = cfg3();
  cfg.optimize_layout = true;
  const Circuit c = circuit::make_bernstein_vazirani(n - 1, 0x2B);

  auto a = make_engine(EngineKind::kMemQSim, n, cfg);
  a->run(c);
  a->save_state(path);

  auto b = make_engine(EngineKind::kMemQSim, n, cfg);
  b->load_state(path);

  sv::Simulator oracle(n);
  oracle.run(c);
  EXPECT_LT(b->to_dense().max_abs_diff(oracle.state()), 1e-6);
  EXPECT_LT(b->to_dense().max_abs_diff(a->to_dense()), 1e-12);
  std::remove(path.c_str());
}

TEST(CheckpointInterplay, PooledCodecRoundTrips) {
  constexpr qubit_t n = 7;
  const std::string path = ckpt_path("pool");
  EngineConfig cfg = cfg3();
  cfg.codec_threads = 4;
  auto a = make_engine(EngineKind::kMemQSim, n, cfg);
  a->run(circuit::make_qft(n));
  a->save_state(path);

  auto b = make_engine(EngineKind::kMemQSim, n, cfg);
  b->load_state(path);
  EXPECT_LT(b->to_dense().max_abs_diff(a->to_dense()), 1e-12);
  std::remove(path.c_str());
}

TEST(CheckpointInterplay, FileBackendRoundTripsAcrossBackends) {
  // Checkpoints are backend-neutral: a spilling engine's state restores
  // into a RAM-backed engine and vice versa.
  constexpr qubit_t n = 7;
  const std::string path = ckpt_path("blob");
  EngineConfig ram = cfg3();
  ram.codec.compressor = "null";
  EngineConfig file = ram;
  file.store_backend = StoreBackend::kFile;
  file.host_blob_budget_bytes = 1024;

  auto a = make_engine(EngineKind::kMemQSim, n, file);
  a->run(circuit::make_qft(n));
  a->save_state(path);

  auto b = make_engine(EngineKind::kMemQSim, n, ram);
  b->load_state(path);
  EXPECT_EQ(b->to_dense().max_abs_diff(a->to_dense()), 0.0);

  b->save_state(path);
  auto c = make_engine(EngineKind::kMemQSim, n, file);
  c->load_state(path);
  EXPECT_EQ(c->to_dense().max_abs_diff(a->to_dense()), 0.0);
  EXPECT_LE(c->telemetry().peak_resident_blob_bytes,
            file.host_blob_budget_bytes);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace memq::core
