// load_dense ingestion and the Grover-capable QASM export path.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.hpp"
#include "circuit/workloads.hpp"
#include "common/prng.hpp"
#include "core/engine.hpp"
#include "sv/simulator.hpp"

namespace memq::core {
namespace {

using circuit::Circuit;

EngineConfig cfg3() {
  EngineConfig cfg;
  cfg.chunk_qubits = 3;
  cfg.codec.bound = 1e-9;
  return cfg;
}

std::vector<amp_t> random_normalized(qubit_t n, std::uint64_t seed) {
  Prng rng(seed);
  std::vector<amp_t> v(dim_of(n));
  double norm = 0;
  for (auto& a : v) {
    a = rng.normal_amp();
    norm += std::norm(a);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (auto& a : v) a *= inv;
  return v;
}

TEST(LoadDense, IngestedStateMatchesOnAllEngines) {
  constexpr qubit_t n = 7;
  const auto amps = random_normalized(n, 4);
  for (const EngineKind kind : {EngineKind::kDense, EngineKind::kWu,
                                EngineKind::kMemQSim}) {
    auto engine = make_engine(kind, n, cfg3());
    engine->load_dense(amps);
    const auto back = engine->to_dense();
    for (index_t i = 0; i < dim_of(n); ++i)
      ASSERT_LT(std::abs(back.amplitude(i) - amps[i]), 1e-6)
          << engine_kind_name(kind) << " index " << i;
  }
}

TEST(LoadDense, EvolutionContinuesFromIngestedState) {
  constexpr qubit_t n = 6;
  const auto amps = random_normalized(n, 9);
  const Circuit c = circuit::make_qft(n);

  auto memq = make_engine(EngineKind::kMemQSim, n, cfg3());
  memq->load_dense(amps);
  memq->run(c);

  sv::Simulator oracle(n);
  std::copy(amps.begin(), amps.end(), oracle.state().amplitudes().begin());
  oracle.run(c);

  const auto result = memq->to_dense();
  for (index_t i = 0; i < dim_of(n); ++i)
    ASSERT_LT(std::abs(result.amplitude(i) - oracle.state().amplitude(i)),
              1e-5);
}

TEST(LoadDense, ReplacesOptimizedLayout) {
  // Loading caller data must drop any prior qubit remapping.
  EngineConfig cfg = cfg3();
  cfg.optimize_layout = true;
  auto engine = make_engine(EngineKind::kMemQSim, 7,  cfg);
  engine->run(circuit::make_bernstein_vazirani(6, 0x15));
  const auto amps = random_normalized(7, 2);
  engine->load_dense(amps);
  EXPECT_LT(std::abs(engine->amplitude(5) - amps[5]), 1e-6);
}

TEST(LoadDense, RejectsWrongSize) {
  auto engine = make_engine(EngineKind::kMemQSim, 5, cfg3());
  std::vector<amp_t> wrong(16);
  EXPECT_THROW(engine->load_dense(wrong), Error);
}

TEST(QasmExport, GroverRoundTripsThroughLowering) {
  // mcz with many controls has no qelib1 spelling; export lowers it.
  const Circuit grover = circuit::make_grover(6, 0b110101, 2);
  const std::string text = circuit::to_qasm(grover);
  const auto prog = circuit::parse_qasm(text);
  sv::Simulator a(6), b(6);
  a.run(grover);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-8);
}

TEST(QasmExport, ControlledSGateLowers) {
  Circuit c(2);
  c.h(0).h(1);
  c.append(circuit::Gate::s(1).with_controls({0}));  // "cs" is not in qelib1
  const auto prog = circuit::parse_qasm(circuit::to_qasm(c));
  sv::Simulator a(2), b(2);
  a.run(c);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-10);
}

TEST(QasmExport, Shor15RoundTrips) {
  const Circuit shor = circuit::make_shor15_order_finding(7, 4);
  const auto prog = circuit::parse_qasm(circuit::to_qasm(shor));
  sv::Simulator a(shor.n_qubits()), b(shor.n_qubits());
  a.run(shor);
  b.run(prog.circuit);
  EXPECT_NEAR(a.state().fidelity(b.state()), 1.0, 1e-8);
}

}  // namespace
}  // namespace memq::core
